#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace cronets::net {

class Host;

/// Consumer of TCP segments delivered to a bound local port
/// (a TCP connection or a listener).
class SegmentSink {
 public:
  virtual ~SegmentSink() = default;
  virtual void on_packet(const Packet& pkt) = 0;
};

/// Hook invoked on every packet arriving at a host before local delivery.
/// Tunnel endpoints and the NAT register themselves here.
class PacketFilter {
 public:
  enum class Verdict { kPass, kConsumed };
  virtual ~PacketFilter() = default;
  /// May modify `pkt` in place (decap, address rewrite) and/or re-inject it
  /// via Host::forward(). Returns kConsumed to stop further processing.
  virtual Verdict process(Packet& pkt, Host& host) = 0;
};

/// Sink for ICMP messages addressed to this host (traceroute, ping).
using IcmpSink = std::function<void(const IcmpMessage&, IpAddr from)>;

/// An end host: owns one address, one or more uplinks, a set of bound
/// transport ports, and an optional chain of packet filters (tunnels/NAT).
class Host : public Node {
 public:
  Host(sim::Simulator* simv, NodeId id, std::string name, IpAddr addr)
      : Node(id, std::move(name)), sim_(simv), addr_(addr) {}

  void receive(Packet pkt, Link* from) override;

  /// Originate a packet from this host (fills src if unset).
  void send(Packet pkt);

  /// Forward an in-flight packet (used by NAT/tunnel filters); does not
  /// touch the header stack.
  void forward(Packet pkt);

  void add_uplink(Link* l) { uplinks_.push_back(l); }
  void add_route(IpAddr dst, Link* next_hop) override { routes_[dst] = next_hop; }
  Link* route(IpAddr dst) const;

  void bind(TransportPort port, SegmentSink* sink) { tcp_sinks_[port] = sink; }
  void unbind(TransportPort port) { tcp_sinks_.erase(port); }

  void add_filter(PacketFilter* f) { filters_.push_back(f); }
  void set_icmp_sink(IcmpSink sink) { icmp_sink_ = std::move(sink); }

  /// Additional local addresses (MPTCP ADD_ADDR-style aliases).
  void add_alias(IpAddr a) { aliases_.push_back(a); }
  bool is_local_addr(IpAddr a) const {
    if (a == addr_) return true;
    for (IpAddr x : aliases_)
      if (x == a) return true;
    return false;
  }

  /// Optional tap observing every packet sent and received by this host
  /// (pcap-style capture for the tstat-like analyzer).
  enum class TapDir { kIn, kOut };
  using Tap = std::function<void(const Packet&, TapDir)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Hook applied to every locally-originated packet before routing; a
  /// tunnel client uses it to encapsulate traffic bound for tunnelled
  /// destinations (the GRE/IPsec "tunnel device").
  using OutputHook = std::function<void(Packet&)>;
  void set_output_hook(OutputHook h) { output_hook_ = std::move(h); }

  IpAddr addr() const { return addr_; }
  sim::Simulator* simulator() const { return sim_; }
  std::uint64_t delivered_segments() const { return delivered_segments_; }

 private:
  void deliver_local(Packet&& pkt);

  sim::Simulator* sim_;
  IpAddr addr_;
  std::vector<Link*> uplinks_;
  std::unordered_map<IpAddr, Link*> routes_;
  std::unordered_map<TransportPort, SegmentSink*> tcp_sinks_;
  std::vector<PacketFilter*> filters_;
  std::vector<IpAddr> aliases_;
  Tap tap_;
  OutputHook output_hook_;
  IcmpSink icmp_sink_;
  std::uint64_t delivered_segments_ = 0;
  std::uint64_t next_uid_ = 1;
};

}  // namespace cronets::net
