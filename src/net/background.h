#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace cronets::net {

/// Parameters of the cross-traffic model on one link direction.
///
/// Simulating the millions of competing Internet flows packet-by-packet is
/// infeasible, so each link carries a *background utilization process*
/// u(t) in [0, 1): an AR(1) (discrete Ornstein-Uhlenbeck) process updated on
/// a fixed epoch grid. The link serves foreground traffic at the residual
/// capacity C*(1-u) and drops packets randomly with a probability that grows
/// quadratically once utilization passes a knee — the classic shape of
/// drop-tail loss under increasing offered load.
struct BackgroundParams {
  double mean_util = 0.0;     ///< long-run mean utilization
  double sigma = 0.02;        ///< per-epoch noise stdev
  double theta = 0.2;         ///< mean-reversion strength per epoch
  double knee = 0.70;         ///< utilization where heavy loss starts to grow
  double loss_scale = 0.6;    ///< quadratic loss coefficient above the knee
  /// Mild statistical loss from transient bursts well before saturation
  /// (fills the broad middle of the per-path loss distribution).
  double mild_knee = 0.45;
  double mild_scale = 0.002;
  double base_loss = 0.0;     ///< floor loss (transmission errors etc.)
  sim::Time epoch = sim::Time::milliseconds(500);
  /// Diurnal swing: utilization += diurnal_amp * sin(2*pi*(t/24h) + phase).
  double diurnal_amp = 0.0;
  double diurnal_phase = 0.0;
};

/// Packet-loss probability of a link direction at utilization `u` — the
/// single formula shared by the packet-level links and the analytic flow
/// model so both instruments measure the same world.
inline double loss_from_utilization(const BackgroundParams& p, double u) {
  const double over = std::max(0.0, u - p.knee);
  const double mild = std::max(0.0, u - p.mild_knee);
  return std::min(0.5,
                  p.base_loss + p.loss_scale * over * over + p.mild_scale * mild * mild);
}

/// Deterministic diurnal utilization component at time `now`.
inline double diurnal_component(const BackgroundParams& p, sim::Time now) {
  if (p.diurnal_amp == 0.0) return 0.0;
  constexpr double kDayNs = 24.0 * 3600.0 * 1e9;
  constexpr double kTwoPi = 6.28318530717958647692;
  return p.diurnal_amp *
         std::sin(kTwoPi * (static_cast<double>(now.ns()) / kDayNs) + p.diurnal_phase);
}

/// Lazily-advanced AR(1) utilization process for one link direction.
class BackgroundProcess {
 public:
  BackgroundProcess(BackgroundParams params, sim::Rng rng)
      : p_(params), rng_(std::move(rng)), util_(params.mean_util) {}

  /// Utilization at simulated time `now` (advances internal state forward;
  /// queries must not go backwards in time by more than one epoch).
  double utilization(sim::Time now) {
    const std::int64_t target = now.ns() / std::max<std::int64_t>(p_.epoch.ns(), 1);
    while (epoch_ < target) {
      util_ += p_.theta * (p_.mean_util - util_) + rng_.normal(0.0, p_.sigma);
      util_ = std::clamp(util_, 0.0, 0.98);
      ++epoch_;
    }
    return std::clamp(util_ + diurnal_component(p_, now) + event_boost(now), 0.0, 0.98);
  }

  /// Random-drop probability for a foreground packet at time `now`.
  double loss_prob(sim::Time now) {
    return loss_from_utilization(p_, utilization(now));
  }

  /// Inject a transient congestion episode: utilization is boosted by
  /// `boost` during [from, until). Used to model the AS-level congestion /
  /// failure events observed in the paper's longitudinal study.
  void add_event(sim::Time from, sim::Time until, double boost) {
    event_from_ = from;
    event_until_ = until;
    event_boost_ = boost;
  }

  const BackgroundParams& params() const { return p_; }

 private:
  double event_boost(sim::Time now) const {
    return (now >= event_from_ && now < event_until_) ? event_boost_ : 0.0;
  }

  BackgroundParams p_;
  sim::Rng rng_;
  double util_;
  std::int64_t epoch_ = 0;
  sim::Time event_from_ = sim::Time::max();
  sim::Time event_until_ = sim::Time::max();
  double event_boost_ = 0.0;
};

}  // namespace cronets::net
