#include "net/network.h"

#include <cassert>
#include <limits>
#include <queue>
#include <unordered_map>

namespace cronets::net {

Host* Network::add_host(const std::string& name) {
  auto id = NodeId{static_cast<std::uint32_t>(nodes_.size())};
  auto host = std::make_unique<Host>(sim_, id, name, IpAddr{next_addr_++});
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  hosts_.push_back(raw);
  return raw;
}

Router* Network::add_router(const std::string& name) {
  auto id = NodeId{static_cast<std::uint32_t>(nodes_.size())};
  auto router = std::make_unique<Router>(sim_, id, name, IpAddr{next_addr_++});
  Router* raw = router.get();
  nodes_.push_back(std::move(router));
  return raw;
}

std::pair<Link*, Link*> Network::add_link(Node* a, Node* b, const LinkSpec& spec) {
  return add_link(a, b, spec, spec);
}

std::pair<Link*, Link*> Network::add_link(Node* a, Node* b, const LinkSpec& fwd,
                                          const LinkSpec& rev) {
  auto mk = [&](Node* s, Node* d, const LinkSpec& sp) {
    links_.push_back(std::make_unique<Link>(sim_, s, d, sp.capacity_bps, sp.prop_delay,
                                            sp.queue_limit_bytes, sp.background,
                                            rng_.fork()));
    return links_.back().get();
  };
  Link* ab = mk(a, b, fwd);
  Link* ba = mk(b, a, rev);
  if (auto* h = dynamic_cast<Host*>(a)) h->add_uplink(ab);
  if (auto* h = dynamic_cast<Host*>(b)) h->add_uplink(ba);
  return {ab, ba};
}

Link* Network::find_link(Node* a, Node* b) const {
  for (const auto& l : links_) {
    if (l->src() == a && l->dst() == b) return l.get();
  }
  return nullptr;
}

void Network::install_route(Node* at, IpAddr dst, Link* out) {
  if (auto* r = dynamic_cast<Router*>(at)) {
    r->add_route(dst, out);
  } else if (auto* h = dynamic_cast<Host*>(at)) {
    h->add_route(dst, out);
  }
}

void Network::install_path(const std::vector<Node*>& path, IpAddr dst) {
  assert(path.size() >= 2);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Link* hop = find_link(path[i], path[i + 1]);
    assert(hop && "install_path: adjacent nodes are not linked");
    install_route(path[i], dst, hop);
  }
}

void Network::compute_routes() {
  // Dijkstra by propagation delay from every node; install the first hop of
  // the shortest path toward every host address.
  const std::size_t n = nodes_.size();
  std::vector<std::vector<Link*>> out(n);
  for (const auto& l : links_) out[raw(l->src()->id())].push_back(l.get());

  for (const auto& src_node : nodes_) {
    std::vector<std::int64_t> dist(n, std::numeric_limits<std::int64_t>::max());
    std::vector<Link*> first_hop(n, nullptr);
    using QE = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    const std::uint32_t s = raw(src_node->id());
    dist[s] = 0;
    pq.push({0, s});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (Link* l : out[u]) {
        const std::uint32_t v = raw(l->dst()->id());
        const std::int64_t nd = d + l->prop_delay().ns();
        if (nd < dist[v]) {
          dist[v] = nd;
          first_hop[v] = (u == s) ? l : first_hop[u];
          pq.push({nd, v});
        }
      }
    }
    for (Host* h : hosts_) {
      const std::uint32_t v = raw(h->id());
      if (h == src_node.get() || !first_hop[v]) continue;
      install_route(src_node.get(), h->addr(), first_hop[v]);
    }
  }
}

}  // namespace cronets::net
