#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "net/background.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace cronets::net {

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t random_drops = 0;
  std::uint64_t red_drops = 0;
};

/// Queue discipline of a link.
enum class QueueDiscipline {
  kDropTail,
  /// RED (Floyd/Jacobson): probabilistic early drop between min/max
  /// thresholds of the averaged queue — keeps standing queues (and thus
  /// RTT inflation) low at the cost of a little throughput.
  kRed,
};

struct RedParams {
  double min_th_fraction = 0.2;  ///< of queue_limit_bytes
  double max_th_fraction = 0.6;
  double max_p = 0.1;            ///< drop probability at max threshold
  double weight = 0.02;          ///< EWMA weight for the averaged queue
};

/// A unidirectional point-to-point channel with a drop-tail queue, a
/// propagation delay, and a background cross-traffic process (see
/// BackgroundProcess). Foreground packets are serialized at the residual
/// capacity C*(1-u(t)).
class Link {
 public:
  Link(sim::Simulator* simv, Node* src, Node* dst, double capacity_bps,
       sim::Time prop_delay, std::int64_t queue_limit_bytes,
       BackgroundParams bg, sim::Rng rng)
      : sim_(simv),
        src_(src),
        dst_(dst),
        capacity_bps_(capacity_bps),
        prop_delay_(prop_delay),
        queue_limit_bytes_(queue_limit_bytes),
        bg_(bg, rng.fork()),
        rng_(std::move(rng)) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offer a packet for transmission. May drop (queue overflow or random
  /// congestion loss); drops are silent, exactly like the real Internet.
  void send(Packet pkt);

  Node* src() const { return src_; }
  Node* dst() const { return dst_; }
  double capacity_bps() const { return capacity_bps_; }
  sim::Time prop_delay() const { return prop_delay_; }
  const LinkStats& stats() const { return stats_; }
  BackgroundProcess& background() { return bg_; }
  std::int64_t queued_bytes() const { return queued_bytes_; }

  /// Residual capacity available to foreground traffic right now.
  double available_bps() { return capacity_bps_ * (1.0 - bg_.utilization(sim_->now())); }

  /// Hard failure injection: a down link silently drops everything offered.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Switch the queue discipline (drop-tail by default).
  void set_queue_discipline(QueueDiscipline qd, RedParams red = RedParams{}) {
    qdisc_ = qd;
    red_ = red;
  }
  QueueDiscipline queue_discipline() const { return qdisc_; }

 private:
  void start_transmission();
  void finish_transmission();

  sim::Simulator* sim_;
  Node* src_;
  Node* dst_;
  double capacity_bps_;
  sim::Time prop_delay_;
  std::int64_t queue_limit_bytes_;
  BackgroundProcess bg_;
  sim::Rng rng_;

  bool red_admits(std::int64_t pkt_bytes);

  std::deque<Packet> queue_;
  std::int64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  bool down_ = false;
  QueueDiscipline qdisc_ = QueueDiscipline::kDropTail;
  RedParams red_;
  double red_avg_bytes_ = 0.0;
  LinkStats stats_;
};

}  // namespace cronets::net
