#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace cronets::net {

/// Identifier of a simulated node (router or host). Dense, assigned by the
/// Network that owns the node.
enum class NodeId : std::uint32_t {};

constexpr std::uint32_t raw(NodeId id) { return static_cast<std::uint32_t>(id); }

/// IPv4-style address. We only need uniqueness + printability, so a plain
/// 32-bit value with no subnet semantics (every router installs host routes).
class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : v_(v) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const IpAddr&) const = default;

  std::string to_string() const {
    return std::to_string((v_ >> 24) & 0xff) + "." + std::to_string((v_ >> 16) & 0xff) +
           "." + std::to_string((v_ >> 8) & 0xff) + "." + std::to_string(v_ & 0xff);
  }

 private:
  std::uint32_t v_ = 0;
};

using TransportPort = std::uint16_t;

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kIcmp = 1,
  kGre = 47,
  kEsp = 50,
};

/// Standard Ethernet-ish constants used throughout.
inline constexpr std::int64_t kMss = 1460;             // TCP payload bytes
inline constexpr std::int64_t kIpTcpHeaderBytes = 40;  // IPv4 20 + TCP 20
inline constexpr std::int64_t kGreOverheadBytes = 24;  // outer IP 20 + GRE 4
inline constexpr std::int64_t kEspOverheadBytes = 57;  // outer IP + ESP hdr/trailer/ICV (approx)

}  // namespace cronets::net

template <>
struct std::hash<cronets::net::IpAddr> {
  std::size_t operator()(const cronets::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
