#pragma once

#include <cassert>
#include <cstdint>
#include <variant>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace cronets::net {

/// One IP header. Packets carry a stack of these: headers.back() is the
/// outermost header (the one routers forward on); tunnels push/pop entries.
struct Ipv4Header {
  IpAddr src;
  IpAddr dst;
  IpProto proto = IpProto::kTcp;
  /// Extra bytes this encapsulation layer adds on the wire (0 for the
  /// innermost header, which is accounted in kIpTcpHeaderBytes).
  std::int64_t encap_overhead = 0;
};

/// TCP segment metadata. We simulate sequence space, not payload bytes.
struct TcpSegment {
  TransportPort sport = 0;
  TransportPort dport = 0;
  std::uint64_t seq = 0;        // first payload byte (or SYN/FIN position)
  std::uint64_t ack = 0;        // next expected byte
  std::int64_t payload = 0;     // payload length in bytes
  bool syn = false;
  bool fin = false;
  bool has_ack = false;
  bool rst = false;
  bool win_probe = false;       // zero-window persist probe; elicits pure ACK
  std::uint32_t rcv_wnd = 0;    // advertised receive window, bytes
  /// SACK option: up to 3 [begin, end) received-but-not-acked ranges.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack;

  // --- MPTCP data-sequence signal (DSS option), valid when dss_len > 0 ---
  std::uint64_t dss_seq = 0;    // connection-level byte offset of this payload
  std::int64_t dss_len = 0;
  std::uint64_t dss_ack = 0;    // connection-level cumulative ack
  bool has_dss_ack = false;
  bool mp_capable = false;      // SYN carries MP_CAPABLE / MP_JOIN
  std::uint32_t mp_token = 0;   // connection token shared by all subflows
  int subflow_id = 0;

  // --- Timestamp option (for RTT measurement à la tstat) ---
  sim::Time ts_val{};
  sim::Time ts_echo{};
};

enum class IcmpType : std::uint8_t {
  kEchoRequest,
  kEchoReply,
  kTimeExceeded,
  kDestUnreachable,
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint32_t probe_id = 0;   // correlates replies with probes
  IpAddr original_dst;          // dst of the packet that triggered the error
  int original_ttl = 0;         // TTL the probe was sent with
};

/// A simulated packet. Copied by value through the network; kept small.
struct Packet {
  std::vector<Ipv4Header> headers;  // [0] = innermost, back() = outermost
  int ttl = 64;
  std::variant<TcpSegment, IcmpMessage> body = TcpSegment{};
  std::uint64_t uid = 0;            // unique per packet, for tracing

  Ipv4Header& outer() {
    assert(!headers.empty());
    return headers.back();
  }
  const Ipv4Header& outer() const {
    assert(!headers.empty());
    return headers.back();
  }
  const Ipv4Header& inner() const {
    assert(!headers.empty());
    return headers.front();
  }

  bool is_tcp() const { return std::holds_alternative<TcpSegment>(body); }
  TcpSegment& tcp() { return std::get<TcpSegment>(body); }
  const TcpSegment& tcp() const { return std::get<TcpSegment>(body); }
  bool is_icmp() const { return std::holds_alternative<IcmpMessage>(body); }
  IcmpMessage& icmp() { return std::get<IcmpMessage>(body); }
  const IcmpMessage& icmp() const { return std::get<IcmpMessage>(body); }

  /// Total wire size: payload + base IP/TCP header + every encap layer.
  std::int64_t size_bytes() const {
    std::int64_t sz = kIpTcpHeaderBytes;
    if (is_tcp()) sz += tcp().payload;
    for (const auto& h : headers) sz += h.encap_overhead;
    return sz;
  }
};

}  // namespace cronets::net
