#include "net/host.h"

#include <cassert>

namespace cronets::net {

Link* Host::route(IpAddr dst) const {
  auto it = routes_.find(dst);
  if (it != routes_.end()) return it->second;
  return uplinks_.empty() ? nullptr : uplinks_.front();
}

void Host::receive(Packet pkt, Link* /*from*/) {
  if (tap_) tap_(pkt, TapDir::kIn);
  for (PacketFilter* f : filters_) {
    if (f->process(pkt, *this) == PacketFilter::Verdict::kConsumed) return;
  }
  if (is_local_addr(pkt.outer().dst)) {
    deliver_local(std::move(pkt));
    return;
  }
  // Not for us and no filter claimed it: hosts do not forward by default.
}

void Host::deliver_local(Packet&& pkt) {
  if (pkt.is_icmp()) {
    const IcmpMessage& m = pkt.icmp();
    if (m.type == IcmpType::kEchoRequest) {
      Packet reply;
      reply.headers.push_back(
          Ipv4Header{.src = addr_, .dst = pkt.outer().src, .proto = IpProto::kIcmp});
      IcmpMessage rm;
      rm.type = IcmpType::kEchoReply;
      rm.probe_id = m.probe_id;
      rm.original_ttl = m.original_ttl;
      reply.body = rm;
      send(std::move(reply));
    } else if (icmp_sink_) {
      icmp_sink_(m, pkt.outer().src);
    }
    return;
  }
  assert(pkt.is_tcp());
  auto it = tcp_sinks_.find(pkt.tcp().dport);
  if (it != tcp_sinks_.end()) {
    ++delivered_segments_;
    it->second->on_packet(pkt);
  }
  // No listener: a real stack would send RST; we silently drop, which the
  // sender's RTO handles the same way.
}

void Host::send(Packet pkt) {
  assert(!pkt.headers.empty());
  if (pkt.outer().src == IpAddr{}) pkt.outer().src = addr_;
  pkt.uid = next_uid_++;
  if (output_hook_) output_hook_(pkt);
  if (tap_) tap_(pkt, TapDir::kOut);
  if (is_local_addr(pkt.outer().dst)) {
    // Loopback delivery (used in tests); skip the wire entirely.
    sim_->schedule_in(sim::Time::microseconds(1),
                      [this, p = std::move(pkt)]() mutable { receive(std::move(p), nullptr); });
    return;
  }
  forward(std::move(pkt));
}

void Host::forward(Packet pkt) {
  Link* out = route(pkt.outer().dst);
  if (!out) return;  // unroutable: drop
  out->send(std::move(pkt));
}

}  // namespace cronets::net
