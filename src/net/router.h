#pragma once

#include <unordered_map>

#include "net/link.h"
#include "net/node.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace cronets::net {

/// A store-and-forward IP router: host routes only (the topology layer
/// installs one entry per destination address), TTL handling with ICMP
/// Time-Exceeded generation so traceroute works.
class Router : public Node {
 public:
  Router(sim::Simulator* simv, NodeId id, std::string name, IpAddr addr)
      : Node(id, std::move(name)), sim_(simv), addr_(addr) {}

  void receive(Packet pkt, Link* from) override;

  void add_route(IpAddr dst, Link* next_hop) override { table_[dst] = next_hop; }
  Link* route(IpAddr dst) const {
    auto it = table_.find(dst);
    return it == table_.end() ? nullptr : it->second;
  }

  IpAddr addr() const { return addr_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }

 private:
  void send_time_exceeded(const Packet& original);

  sim::Simulator* sim_;
  IpAddr addr_;
  std::unordered_map<IpAddr, Link*> table_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_drops_ = 0;
};

}  // namespace cronets::net
