#include "wkld/session_churn.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

namespace cronets::wkld {

SessionChurn::SessionChurn(service::ControlPlane* broker,
                           std::vector<int> clients, std::vector<int> servers,
                           SessionChurnParams params)
    : broker_(broker),
      clients_(std::move(clients)),
      servers_(std::move(servers)),
      params_(params),
      rng_(params.seed) {
  assert(!clients_.empty() && !servers_.empty());
  assert(params_.pareto_alpha > 1.0 && "duration mean must be finite");
  rate_per_s_ = params_.ramp_margin * params_.target_concurrent /
                params_.mean_duration_s;
  // Pareto(x_m, alpha) has mean alpha*x_m/(alpha-1).
  duration_xm_s_ = params_.mean_duration_s * (params_.pareto_alpha - 1.0) /
                   params_.pareto_alpha;
}

void SessionChurn::start() {
  pair_idx_.reserve(clients_.size() * servers_.size());
  for (int c : clients_) {
    for (int s : servers_) pair_idx_.push_back(broker_->register_pair(c, s));
  }
  schedule_next_arrival();
}

void SessionChurn::schedule_next_arrival() {
  const sim::Time gap = sim::Time::from_seconds(rng_.exponential(1.0 / rate_per_s_));
  const sim::Time at = broker_->now() + gap;
  if (at > params_.horizon) return;  // arrivals stop; departures drain
  broker_->queue().schedule(at, [this] { arrive(); });
}

void SessionChurn::arrive() {
  // Draw the session in a fixed order so the workload stream is a pure
  // function of (seed, arrival count).
  const std::size_t pair =
      rng_.index(pair_idx_.size());
  const double demand = std::exp(rng_.uniform(std::log(params_.demand_lo_bps),
                                              std::log(params_.demand_hi_bps)));
  const double duration_s =
      std::min(rng_.pareto(duration_xm_s_, params_.pareto_alpha),
               params_.max_duration_factor * params_.mean_duration_s);
  const int idx = pair_idx_[pair];

  std::uint64_t id;
  const bool sample =
      params_.record_latency &&
      (params_.latency_sample_every <= 1 ||
       stats_.arrivals % params_.latency_sample_every == 0);
  if (sample) {
    const sim::Time last_probe = broker_->pair_last_probe(idx);
    const double staleness_s =
        last_probe.ns() < 0 ? -1.0 : (broker_->now() - last_probe).to_seconds();
    const auto t0 = std::chrono::steady_clock::now();
    id = broker_->open_session(idx, demand);
    const auto t1 = std::chrono::steady_clock::now();
    stats_.admit_wall_ns.push_back(static_cast<std::uint32_t>(std::min<long long>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        0xffffffffll)));
    stats_.admit_staleness_s.push_back(static_cast<float>(staleness_s));
  } else {
    id = broker_->open_session(idx, demand);
  }

  ++stats_.arrivals;
  ++stats_.concurrent;
  stats_.peak_concurrent = std::max(stats_.peak_concurrent, stats_.concurrent);

  broker_->queue().schedule(
      broker_->now() + sim::Time::from_seconds(duration_s), [this, id] {
        broker_->close_session(id);
        ++stats_.departures;
        --stats_.concurrent;
      });
  schedule_next_arrival();
}

}  // namespace cronets::wkld
