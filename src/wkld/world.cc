#include "wkld/world.h"

namespace cronets::wkld {

using topo::Region;

World::World(std::uint64_t seed, topo::TopologyParams params,
             topo::CloudParams cloud, sim::Parallelism parallelism)
    : seed_(seed), parallelism_(parallelism) {
  params.seed = seed;
  internet_ = std::make_unique<topo::Internet>(params, cloud);
  flow_ = std::make_unique<model::FlowModel>(internet_.get(), seed ^ 0x9e3779b9u);
  overlay_ = std::make_unique<core::OverlayNetwork>(internet_.get());
  meter_ = std::make_unique<core::ModelMeasurement>(internet_.get(), flow_.get(),
                                                    seed);
}

sim::ThreadPool& World::pool() {
  if (!pool_) pool_ = std::make_unique<sim::ThreadPool>(parallelism_);
  return *pool_;
}

void World::set_parallelism(sim::Parallelism par) {
  parallelism_ = par;
  pool_.reset();
}

namespace {
std::vector<int> make_population(topo::Internet& net, int total,
                                 const std::vector<std::pair<Region, double>>& mix,
                                 const std::string& prefix, int* counter) {
  std::vector<int> out;
  // Largest-remainder apportionment of `total` across the mix.
  std::vector<int> counts(mix.size(), 0);
  int assigned = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    counts[i] = static_cast<int>(mix[i].second * total);
    assigned += counts[i];
  }
  for (std::size_t i = 0; assigned < total; i = (i + 1) % mix.size()) {
    ++counts[i];
    ++assigned;
  }
  for (std::size_t i = 0; i < mix.size(); ++i) {
    for (int k = 0; k < counts[i]; ++k) {
      out.push_back(net.add_client(
          mix[i].first, prefix + "-" + std::to_string((*counter)++)));
    }
  }
  return out;
}
}  // namespace

std::vector<int> World::make_web_clients(int total) {
  // 48 EU, 45 NA (split east/west), 14 Asia, 3 AU out of 110.
  const std::vector<std::pair<Region, double>> mix = {
      {Region::kEurope, 48.0 / 110}, {Region::kNaEast, 23.0 / 110},
      {Region::kNaWest, 22.0 / 110}, {Region::kAsia, 14.0 / 110},
      {Region::kAustralia, 3.0 / 110},
  };
  return make_population(*internet_, total, mix, "pl", &client_counter_);
}

std::vector<int> World::make_controlled_clients(int total) {
  // 26 North+South America, 18 EU, 5 Asia, 1 AU out of 50.
  const std::vector<std::pair<Region, double>> mix = {
      {Region::kNaEast, 11.0 / 50},       {Region::kNaWest, 9.0 / 50},
      {Region::kSouthAmerica, 6.0 / 50},  {Region::kEurope, 18.0 / 50},
      {Region::kAsia, 5.0 / 50},          {Region::kAustralia, 1.0 / 50},
  };
  return make_population(*internet_, total, mix, "ctl", &client_counter_);
}

std::vector<int> World::make_servers() {
  // Canada, USA x3, Germany, Switzerland x2, Japan, Korea, China.
  const Region regions[] = {
      Region::kNaEast, Region::kNaEast, Region::kNaWest, Region::kNaWest,
      Region::kEurope, Region::kEurope, Region::kEurope, Region::kAsia,
      Region::kAsia,   Region::kAsia,
  };
  std::vector<int> out;
  for (Region r : regions) {
    out.push_back(
        internet_->add_server(r, "mirror-" + std::to_string(server_counter_++)));
  }
  return out;
}

std::vector<int> World::rent_paper_overlays() {
  std::vector<int> out;
  for (const char* dc : {"wdc", "sjc", "dal", "ams", "tok"}) {
    out.push_back(overlay_->rent(dc).endpoint);
  }
  return out;
}

std::vector<int> World::rent_all_overlays() {
  std::vector<int> out;
  for (const auto& dc : internet_->cloud().dcs) {
    out.push_back(overlay_->rent(dc.name).endpoint);
  }
  return out;
}

}  // namespace cronets::wkld
