#include "wkld/experiments.h"

#include <algorithm>
#include <cassert>

namespace cronets::wkld {

WebExperiment run_web_experiment(World& world, int num_clients, sim::Time at) {
  WebExperiment exp;
  exp.clients = world.make_web_clients(num_clients);
  exp.servers = world.make_servers();
  exp.overlays = world.rent_paper_overlays();

  // Fan the (server, client) pairs out across the measurement pool in
  // fixed-size batches through the SoA batch kernel. Each pair's noise is
  // seeded from (world seed, src, dst, t), so the sample vector is bitwise
  // identical at any thread count and batch size.
  const std::size_t per_server = exp.clients.size();
  exp.samples.resize(exp.servers.size() * per_server);
  const std::size_t batch = static_cast<std::size_t>(core::probe_batch_size());
  const std::size_t chunks = (exp.samples.size() + batch - 1) / batch;
  world.pool().parallel_for(chunks, [&](std::size_t c) {
    thread_local std::vector<std::pair<int, int>> pairs;
    pairs.clear();
    const std::size_t lo = c * batch;
    const std::size_t hi = std::min(exp.samples.size(), lo + batch);
    for (std::size_t i = lo; i < hi; ++i) {
      // The server is the TCP sender (file download to the client).
      pairs.emplace_back(exp.servers[i / per_server], exp.clients[i % per_server]);
    }
    world.meter().measure_batch(pairs.data(), pairs.size(), exp.overlays, at,
                                exp.samples.data() + lo);
  });
  return exp;
}

ControlledExperiment run_controlled_experiment(World& world, int num_clients,
                                               sim::Time at) {
  return run_controlled_experiment_on(world, world.make_controlled_clients(num_clients),
                                      at);
}

ControlledExperiment run_controlled_experiment_on(World& world,
                                                  const std::vector<int>& clients,
                                                  sim::Time at) {
  ControlledExperiment exp;
  exp.clients = clients;
  exp.overlays = world.rent_paper_overlays();

  const std::size_t per_client = exp.overlays.size();
  exp.samples.resize(exp.clients.size() * per_client);
  // Per-sender relay sets, built once: the other four DCs act as overlay
  // nodes for each measurement.
  std::vector<std::vector<int>> relays(per_client);
  for (std::size_t s = 0; s < per_client; ++s) {
    for (int o : exp.overlays) {
      if (o != exp.overlays[s]) relays[s].push_back(o);
    }
  }
  const std::size_t batch = static_cast<std::size_t>(core::probe_batch_size());
  const std::size_t chunks = (exp.samples.size() + batch - 1) / batch;
  world.pool().parallel_for(chunks, [&](std::size_t c) {
    thread_local std::vector<core::ProbeRequest> reqs;
    reqs.clear();
    const std::size_t lo = c * batch;
    const std::size_t hi = std::min(exp.samples.size(), lo + batch);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t s = i % per_client;
      reqs.push_back(core::ProbeRequest{exp.overlays[s],
                                        exp.clients[i / per_client], &relays[s]});
    }
    world.meter().measure_batch(reqs.data(), reqs.size(), at,
                                exp.samples.data() + lo);
  });
  return exp;
}

int inject_ranking_event(World& world, const std::vector<int>& clients,
                         sim::Time from, sim::Time until, double boost) {
  assert(!clients.empty());
  // Pick a deterministic victim client. The transient congests its
  // provider tier-2's *transit uplinks* (the intermediate ISP of the
  // paper's path-1/2/4 anecdote): every default path from afar crosses
  // them, while overlay legs enter through the cloud's direct peering with
  // that tier-2 and are unaffected — which is why these pairs rank top.
  auto& net = world.internet();
  // Choose a victim whose provider tier-2 peers directly with the cloud:
  // that peering is the unaffected bypass that makes the event's pairs the
  // top-ranked improvements (otherwise overlay paths share the congestion).
  int victim = clients[clients.size() / 3];
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int cand = clients[(clients.size() / 3 + i) % clients.size()];
    const auto& cand_stub = net.ases()[net.endpoint(cand).as_id];
    bool ok = false;
    for (const auto& sa : cand_stub.adj) {
      if (sa.rel != topo::Rel::kCustomerOf) continue;
      for (const auto& ta : net.ases()[sa.nbr_as].adj) {
        if (ta.rel == topo::Rel::kPeerWith &&
            net.ases()[ta.nbr_as].tier == topo::Tier::kCloudDc) {
          ok = true;
        }
      }
      break;  // first provider only, matching the boost below
    }
    if (ok) {
      victim = cand;
      break;
    }
  }
  const topo::Endpoint& ep = net.endpoint(victim);
  const auto& stub = net.ases()[ep.as_id];
  for (const auto& stub_adj : stub.adj) {
    if (stub_adj.rel != topo::Rel::kCustomerOf) continue;
    const auto& t2 = net.ases()[stub_adj.nbr_as];
    for (const auto& adj : t2.adj) {
      const bool cloud_nbr = net.ases()[adj.nbr_as].tier == topo::Tier::kCloudDc;
      if (adj.rel == topo::Rel::kCustomerOf && !cloud_nbr) {
        net.add_event(topo::LinkEvent{adj.link_id, true, from, until, boost});
        net.add_event(topo::LinkEvent{adj.link_id, false, from, until, boost});
      }
    }
    break;  // first provider only
  }
  return victim;
}

LongitudinalPipeline run_longitudinal_pipeline(World& world, int top_n,
                                               int num_samples) {
  LongitudinalPipeline out;
  const auto clients = world.make_controlled_clients(50);
  // The paper's path-1/2/4 anecdote: a transient event congests one
  // destination during the ranking measurement and has cleared by the
  // follow-up week.
  out.event_victim = inject_ranking_event(world, clients, sim::Time::zero(),
                                          sim::Time::hours(4));
  out.ranking = run_controlled_experiment_on(world, clients, sim::Time::hours(1));
  out.study = run_longitudinal_study(world, out.ranking, top_n, num_samples);
  return out;
}

LongitudinalStudy run_longitudinal_study(World& world,
                                         const ControlledExperiment& ranking,
                                         int top_n, int num_samples,
                                         sim::Time interval) {
  LongitudinalStudy study;
  study.samples_per_pair = num_samples;

  // Rank pairs by split-overlay improvement at ranking time.
  struct Ranked {
    const core::PairSample* s;
    double improvement;
  };
  std::vector<Ranked> ranked;
  for (const auto& s : ranking.samples) {
    const double imp = s.direct_bps > 0 ? s.best_split_bps() / s.direct_bps : 0.0;
    ranked.push_back({&s, imp});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.improvement > b.improvement; });

  const int n = std::min<int>(top_n, static_cast<int>(ranked.size()));
  const sim::Time start = sim::Time::hours(6);  // after the ranking event ends
  // One task per followed pair; the time series inside a pair stays
  // sequential (its samples share nothing but the deterministic field).
  study.pairs.resize(static_cast<std::size_t>(n));
  world.pool().parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    LongitudinalStudy::Pair& pair = study.pairs[i];
    pair.src = ranked[i].s->src;
    pair.dst = ranked[i].s->dst;
    pair.ranking_improvement = ranked[i].improvement;

    // The overlay set for this pair: the four DCs that are not the sender.
    std::vector<int> relays;
    for (const auto& o : ranked[i].s->overlays) relays.push_back(o.overlay_ep);

    // Single-request batches through the SoA kernel: even a one-pair batch
    // dedups the link fields its nine paths share and skips the scalar
    // path's per-sample memo probes.
    core::PairSample s;
    const core::ProbeRequest req{pair.src, pair.dst, &relays};
    for (int t = 0; t < num_samples; ++t) {
      const sim::Time at = start + interval * t;
      world.meter().measure_batch(&req, 1, at, &s);
      pair.history.direct.push_back(s.direct_bps);
      pair.history.direct_rtt_ms.push_back(s.direct_rtt_ms);
      std::vector<double> per_overlay, per_overlay_rtt;
      for (const auto& o : s.overlays) {
        per_overlay.push_back(o.split_bps);
        per_overlay_rtt.push_back(o.rtt_ms);
      }
      pair.history.overlay.push_back(per_overlay);
      pair.history.overlay_rtt_ms.push_back(per_overlay_rtt);
      pair.best_split_series.push_back(s.best_split_bps());
    }
  });
  return study;
}

}  // namespace cronets::wkld
