#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/measure_model.h"
#include "core/overlay.h"
#include "model/flow_model.h"
#include "sim/thread_pool.h"
#include "topo/internet.h"

namespace cronets::wkld {

/// The shared experiment world: one generated Internet, one flow model,
/// and the standard endpoint populations from the paper. Every bench and
/// example builds a World from a seed so results are reproducible and
/// consistent across figures.
///
/// The world also owns the measurement thread pool: experiment sweeps fan
/// their (src, dst) pairs out across `pool()`. Results are bitwise
/// independent of the thread count — per-pair noise is seeded from
/// (seed, src, dst, t), never from a shared sequential stream.
class World {
 public:
  explicit World(std::uint64_t seed = 42,
                 topo::TopologyParams params = topo::TopologyParams{},
                 topo::CloudParams cloud = topo::CloudParams{},
                 sim::Parallelism parallelism = sim::Parallelism{});

  topo::Internet& internet() { return *internet_; }
  model::FlowModel& flow() { return *flow_; }
  core::OverlayNetwork& overlay() { return *overlay_; }
  core::ModelMeasurement& meter() { return *meter_; }

  std::uint64_t seed() const { return seed_; }

  /// The measurement pool (lazily built from the Parallelism config; auto
  /// mode honours the CRONETS_THREADS environment variable).
  sim::ThreadPool& pool();
  /// Replace the parallelism config; the pool is rebuilt on next use.
  void set_parallelism(sim::Parallelism par);
  const sim::Parallelism& parallelism() const { return parallelism_; }

  /// PlanetLab-like client population (§II-A: 48 EU, 45 NA, 14 Asia, 3 AU
  /// when `total` is 110; other totals scale the mix).
  std::vector<int> make_web_clients(int total = 110);
  /// The §II-B controlled-experiment population (50 nodes: 26 Americas,
  /// 18 EU, 5 Asia, 1 AU).
  std::vector<int> make_controlled_clients(int total = 50);
  /// The ten Eclipse-mirror-style servers (Canada/USA/DE/CH/JP/KR/CN).
  std::vector<int> make_servers();

  /// Rent the paper's five overlay DCs (§II-A): WDC, San Jose, Dallas,
  /// Amsterdam, Tokyo. Returns their endpoint ids.
  std::vector<int> rent_paper_overlays();
  /// Rent every data center (the nine-server MPTCP setup, §VI-B).
  std::vector<int> rent_all_overlays();

 private:
  std::uint64_t seed_;
  sim::Parallelism parallelism_;
  std::unique_ptr<topo::Internet> internet_;
  std::unique_ptr<model::FlowModel> flow_;
  std::unique_ptr<core::OverlayNetwork> overlay_;
  std::unique_ptr<core::ModelMeasurement> meter_;
  std::unique_ptr<sim::ThreadPool> pool_;
  int client_counter_ = 0;
  int server_counter_ = 0;
};

}  // namespace cronets::wkld
