#pragma once

#include <cstdint>
#include <vector>

#include "service/broker.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace cronets::wkld {

/// Session-scale traffic generator: Poisson arrivals of long-lived client
/// sessions with heavy-tailed (Pareto) durations and log-uniform bandwidth
/// demands, driven on the broker's event queue. By Little's law the
/// steady-state concurrency is arrival_rate x mean duration; the params
/// express the target concurrency directly and derive the rate (with a
/// ramp margin so the target is reached inside the horizon despite the
/// Pareto tail).
struct SessionChurnParams {
  std::uint64_t seed = 1;
  double target_concurrent = 10'000;
  double mean_duration_s = 60.0;
  /// Pareto shape of session durations (alpha in (1, 2]: finite mean,
  /// heavy tail — a few sessions last the whole run).
  double pareto_alpha = 1.6;
  /// Durations are capped at this multiple of the mean (keeps the tail
  /// inside a finite horizon without distorting the bulk).
  double max_duration_factor = 50.0;
  /// Per-session demand, drawn log-uniformly from [lo, hi].
  double demand_lo_bps = 200e3;
  double demand_hi_bps = 4e6;
  /// Arrivals stop at the horizon (departures keep draining after it).
  sim::Time horizon = sim::Time::seconds(180);
  /// Over-provisioning of the arrival rate relative to Little's law, to
  /// reach the target concurrency within ~3 mean durations.
  double ramp_margin = 1.3;
  /// Record per-admission wall-clock latency and ranking staleness (the
  /// bench's p50/p99 decision-latency source).
  bool record_latency = false;
  /// Record every Nth admission only (>= 1). At 10^7-session scale a
  /// full per-admission log costs GBs; sampling keeps the percentile
  /// estimate while bounding memory. Deterministic: keyed on the arrival
  /// counter, not on wall-clock.
  std::uint64_t latency_sample_every = 1;
};

struct SessionChurnStats {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::size_t concurrent = 0;
  std::size_t peak_concurrent = 0;
  /// Wall-clock nanoseconds per open_session call (record_latency).
  std::vector<std::uint32_t> admit_wall_ns;
  /// Ranking staleness (simulated seconds) at each admission decision —
  /// how old the probe data behind the chosen path was.
  std::vector<float> admit_staleness_s;
};

/// Drives a service::ControlPlane — the single Broker or the sharded
/// multi-broker plane — with session churn over fixed client/server
/// populations. All randomness comes from one seeded serial stream drawn
/// on the (single-threaded) event queue, so the workload is deterministic
/// and independent of the control plane's probe parallelism and shard
/// count.
class SessionChurn {
 public:
  SessionChurn(service::ControlPlane* broker, std::vector<int> clients,
               std::vector<int> servers, SessionChurnParams params);

  /// Register all (client, server) pairs with the control plane and
  /// schedule the first arrival. Call before run_until.
  void start();

  const SessionChurnStats& stats() const { return stats_; }
  double arrival_rate_per_s() const { return rate_per_s_; }
  const std::vector<int>& pair_indices() const { return pair_idx_; }

 private:
  void schedule_next_arrival();
  void arrive();

  service::ControlPlane* broker_;
  std::vector<int> clients_;
  std::vector<int> servers_;
  SessionChurnParams params_;
  sim::Rng rng_;
  double rate_per_s_ = 0.0;
  double duration_xm_s_ = 0.0;  ///< Pareto scale matching the mean
  std::vector<int> pair_idx_;   ///< broker pair index per (client, server)
  SessionChurnStats stats_;
};

}  // namespace cronets::wkld
