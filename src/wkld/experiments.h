#pragma once

#include <vector>

#include "core/measure_model.h"
#include "core/selection.h"
#include "sim/time.h"
#include "wkld/world.h"

namespace cronets::wkld {

// The experiment sweeps below fan their pair measurements out across
// `world.pool()`. Sample vectors keep the historical (serial) ordering and
// are bitwise identical at any thread count — see core::ModelMeasurement.

/// §II-A / Figure 2 — "real-life web server" experiment: every client
/// downloads from every mirror server, direct and via each of the five
/// overlay DCs (110 x 10 x (1 + 5) ≈ 6,600 observed paths).
struct WebExperiment {
  std::vector<int> clients;
  std::vector<int> servers;
  std::vector<int> overlays;
  std::vector<core::PairSample> samples;  // one per (server -> client) pair
};
WebExperiment run_web_experiment(World& world, int num_clients = 110,
                                 sim::Time at = sim::Time::hours(1));

/// §II-B / Figures 3-5 & 8-11 — controlled-sender experiment: for each of
/// the 50 clients, each DC VM takes a turn as the TCP sender while the
/// remaining four act as overlay nodes (250 measurements, 1,250 paths).
struct ControlledExperiment {
  std::vector<int> clients;
  std::vector<int> overlays;              // the five DC VMs
  std::vector<core::PairSample> samples;  // sender(VM) -> client
};
ControlledExperiment run_controlled_experiment(World& world, int num_clients = 50,
                                               sim::Time at = sim::Time::hours(1));
/// Variant over an existing client population (used by the longitudinal
/// pipeline, which must inject its transient event before measuring).
ControlledExperiment run_controlled_experiment_on(World& world,
                                                  const std::vector<int>& clients,
                                                  sim::Time at);

/// §IV / Figures 6-7 & Table I — longitudinal study: the 30 pairs with the
/// highest split-overlay improvement are re-measured 50 times at 3-hour
/// intervals over a week. A transient congestion event is injected during
/// the ranking measurement (mirroring the paper's path-1/2/4 anecdote,
/// where the initially-worst paths had recovered by the follow-up week).
struct LongitudinalStudy {
  struct Pair {
    int src = -1;
    int dst = -1;
    double ranking_improvement = 0.0;         // split/direct at ranking time
    core::PairHistory history;                // direct + per-overlay samples
    std::vector<double> best_split_series;    // max split-overlay per sample
  };
  std::vector<Pair> pairs;  // sorted by ranking improvement, best first
  int samples_per_pair = 0;
};
LongitudinalStudy run_longitudinal_study(World& world,
                                         const ControlledExperiment& ranking,
                                         int top_n = 30, int num_samples = 50,
                                         sim::Time interval = sim::Time::hours(3));

/// Inject the transient congestion episode used by the longitudinal story:
/// boosts utilization of one client's provider uplink during
/// [from, until). Returns the affected client endpoint.
int inject_ranking_event(World& world, const std::vector<int>& clients,
                         sim::Time from, sim::Time until, double boost = 0.65);

/// The full §IV pipeline: build the §II-B population, run a transient
/// congestion event over the ranking window, rank pairs by split-overlay
/// improvement at ranking time, then follow the top-N for a week.
struct LongitudinalPipeline {
  ControlledExperiment ranking;
  LongitudinalStudy study;
  int event_victim = -1;
};
LongitudinalPipeline run_longitudinal_pipeline(World& world, int top_n = 30,
                                               int num_samples = 50);

}  // namespace cronets::wkld
