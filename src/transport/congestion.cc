#include "transport/congestion.h"

#include <algorithm>
#include <cmath>

namespace cronets::transport {

namespace {
constexpr double kMinCwndMss = 2.0;
}

// ---------------------------------------------------------------- NewReno

void RenoCc::on_ack(std::int64_t acked, sim::Time /*srtt*/, sim::Time /*now*/) {
  if (in_slow_start()) {
    cwnd_ += ss_increment(acked);
  } else {
    cwnd_ += mss_ * std::min(static_cast<double>(acked), 8.0 * mss_) / cwnd_;
  }
}

void RenoCc::on_loss_event(sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = ssthresh_;
}

void RenoCc::on_timeout(sim::Time /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = mss_;
}

// ------------------------------------------------------------------ CUBIC

double CubicCc::cubic_window(double t_sec) const {
  const double d = t_sec - k_;
  return kC * d * d * d + w_max_mss_;
}

void CubicCc::on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) {
  if (in_slow_start()) {
    cwnd_ += ss_increment(acked);
    return;
  }
  if (!in_epoch_) {
    in_epoch_ = true;
    epoch_start_ = now;
    if (w_max_mss_ < cwnd_ / mss_) w_max_mss_ = cwnd_ / mss_;
    k_ = std::cbrt(w_max_mss_ * (1.0 - kBeta) / kC);
  }
  const double t = (now - epoch_start_).to_seconds() + srtt.to_seconds();
  const double target_mss = cubic_window(t);
  const double cwnd_mss = cwnd_ / mss_;

  // TCP-friendly region (standard AIMD estimate with beta=0.7).
  const double rtt = std::max(srtt.to_seconds(), 1e-4);
  const double elapsed = (now - epoch_start_).to_seconds();
  const double w_est =
      w_max_mss_ * kBeta + (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (elapsed / rtt);

  const double goal = std::max(target_mss, w_est);
  if (goal > cwnd_mss) {
    // Spread the increase over the outstanding window, per-ACK, but never
    // grow faster than slow start would (Linux caps cubic's per-ACK gain;
    // without this, a stale high target after an RTO multiplies a large
    // cumulative ACK into a runaway window).
    const double inc =
        mss_ * ((goal - cwnd_mss) / cwnd_mss) * (static_cast<double>(acked) / mss_);
    cwnd_ += std::min(inc, ss_increment(acked));
  } else {
    cwnd_ += mss_ * 0.01 * (static_cast<double>(acked) / cwnd_);  // slow probe
  }
}

void CubicCc::on_loss_event(sim::Time /*now*/) {
  w_max_mss_ = cwnd_ / mss_;
  cwnd_ = std::max(cwnd_ * kBeta, kMinCwndMss * mss_);
  ssthresh_ = cwnd_;
  in_epoch_ = false;
}

void CubicCc::on_timeout(sim::Time /*now*/) {
  w_max_mss_ = cwnd_ / mss_;
  ssthresh_ = std::max(cwnd_ * kBeta, kMinCwndMss * mss_);
  cwnd_ = mss_;
  in_epoch_ = false;
}

// ----------------------------------------------------------- CoupledGroup

std::size_t CoupledGroup::register_member(CongestionControl* cc) {
  members_.push_back(Member{.cc = cc});
  return members_.size() - 1;
}

double CoupledGroup::total_cwnd() const {
  double total = 0.0;
  for (const auto& m : members_) total += m.cc->cwnd();
  return total;
}

double CoupledGroup::lia_alpha() const {
  double best = 0.0;
  double denom = 0.0;
  for (const auto& m : members_) {
    const double rtt = std::max(m.srtt.to_seconds(), 1e-4);
    best = std::max(best, m.cc->cwnd() / (rtt * rtt));
    denom += m.cc->cwnd() / rtt;
  }
  if (denom <= 0.0) return 1.0;
  return total_cwnd() * best / (denom * denom);
}

// -------------------------------------------------------------------- LIA

void LiaCc::on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) {
  (void)now;
  auto& me = group_->member(self_);
  me.srtt = srtt;
  me.bytes_since_loss += static_cast<double>(acked);
  if (in_slow_start()) {
    cwnd_ += ss_increment(acked);
    return;
  }
  const double total = group_->total_cwnd();
  const double a = group_->lia_alpha();
  const double coupled = a * static_cast<double>(acked) * mss_ / std::max(total, mss_);
  const double uncoupled = static_cast<double>(acked) * mss_ / cwnd_;
  cwnd_ += std::min(coupled, uncoupled);
}

void LiaCc::on_loss_event(sim::Time /*now*/) {
  auto& me = group_->member(self_);
  me.prev_interloss_bytes = me.bytes_since_loss;
  me.bytes_since_loss = 0.0;
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = ssthresh_;
}

void LiaCc::on_timeout(sim::Time /*now*/) {
  auto& me = group_->member(self_);
  me.prev_interloss_bytes = me.bytes_since_loss;
  me.bytes_since_loss = 0.0;
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = mss_;
}

// ------------------------------------------------------------------- OLIA

double OliaCc::alpha() const {
  // OLIA (Khalili et al. §3): paths are ranked by l_r^2 / rtt_r where l_r is
  // the (smoothed) inter-loss byte count; alpha shifts window from the
  // max-window set M toward the best-but-small set B \ M.
  const auto& members = group_->members();
  const std::size_t n = members.size();
  if (n <= 1) return 0.0;

  double best_metric = -1.0;
  double max_w = -1.0;
  for (const auto& m : members) {
    const double l = std::max(m.bytes_since_loss, m.prev_interloss_bytes);
    const double rtt = std::max(m.srtt.to_seconds(), 1e-4);
    best_metric = std::max(best_metric, l * l / rtt);
    max_w = std::max(max_w, m.cc->cwnd());
  }
  auto metric = [](const CoupledGroup::Member& m) {
    const double l = std::max(m.bytes_since_loss, m.prev_interloss_bytes);
    return l * l / std::max(m.srtt.to_seconds(), 1e-4);
  };

  std::size_t n_best_small = 0;  // |B \ M|
  std::size_t n_max = 0;         // |M|
  for (const auto& m : members) {
    const bool is_best = metric(m) >= best_metric * (1.0 - 1e-9);
    const bool is_max = m.cc->cwnd() >= max_w * (1.0 - 1e-9);
    if (is_best && !is_max) ++n_best_small;
    if (is_max) ++n_max;
  }
  if (n_best_small == 0) return 0.0;

  const auto& me = members[self_];
  const bool me_best = metric(me) >= best_metric * (1.0 - 1e-9);
  const bool me_max = me.cc->cwnd() >= max_w * (1.0 - 1e-9);
  const double nn = static_cast<double>(n);
  if (me_best && !me_max) return 1.0 / (static_cast<double>(n_best_small) * nn);
  if (me_max) return -1.0 / (static_cast<double>(n_max) * nn);
  return 0.0;
}

void OliaCc::on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) {
  (void)now;
  auto& me = group_->member(self_);
  me.srtt = srtt;
  me.bytes_since_loss += static_cast<double>(acked);
  if (in_slow_start()) {
    cwnd_ += ss_increment(acked);
    return;
  }
  // dw_r per ACK (in MSS):  (w_r/rtt_r^2) / (sum_p w_p/rtt_p)^2  +  alpha_r / w_r
  double denom = 0.0;
  for (const auto& m : group_->members()) {
    denom += m.cc->cwnd() / std::max(m.srtt.to_seconds(), 1e-4);
  }
  const double rtt = std::max(srtt.to_seconds(), 1e-4);
  const double w_mss = cwnd_ / mss_;
  const double denom_mss = denom / mss_;
  const double coupled_term =
      (w_mss / (rtt * rtt)) / std::max(denom_mss * denom_mss, 1e-9);
  const double alpha_term = alpha() / std::max(w_mss, 1e-9);
  const double dw_mss = (coupled_term + alpha_term) * (static_cast<double>(acked) / mss_);
  cwnd_ = std::max(cwnd_ + dw_mss * mss_, kMinCwndMss * mss_);
}

void OliaCc::on_loss_event(sim::Time /*now*/) {
  auto& me = group_->member(self_);
  me.prev_interloss_bytes = me.bytes_since_loss;
  me.bytes_since_loss = 0.0;
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = ssthresh_;
}

void OliaCc::on_timeout(sim::Time /*now*/) {
  auto& me = group_->member(self_);
  me.prev_interloss_bytes = me.bytes_since_loss;
  me.bytes_since_loss = 0.0;
  ssthresh_ = std::max(cwnd_ / 2.0, kMinCwndMss * mss_);
  cwnd_ = mss_;
}

}  // namespace cronets::transport
