#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "transport/tcp.h"

namespace cronets::transport {

/// Coupling mode across subflows.
enum class Coupling {
  kOlia,            ///< the paper's Fig. 12 configuration
  kLia,             ///< RFC 6356
  kUncoupledCubic,  ///< the paper's Fig. 13 configuration (sum of subflows)
  kUncoupledReno,
};

struct MptcpConfig {
  TcpConfig subflow;             ///< base per-subflow config (cc is overridden)
  Coupling coupling = Coupling::kOlia;
  /// Stagger between subflow SYNs (the direct path starts first).
  sim::Time subflow_stagger = sim::Time::milliseconds(10);
  /// Opportunistic reinjection (real MPTCP's head-of-line mitigation):
  /// when connection-level delivery stalls while data is outstanding, the
  /// lowest missing DSS range is re-offered so a healthy subflow can carry
  /// it past the struggling one. 0 disables.
  sim::Time hol_check_interval = sim::Time::milliseconds(250);
  std::int64_t hol_reinject_cap = 64 * 1024;
};

/// Initiator-side MPTCP connection.
///
/// One subflow is created per remote address: the first address is the
/// peer's primary (direct path) address, the rest are ADD_ADDR-advertised
/// alternates whose routes traverse different overlay nodes. Data written
/// with app_write() is sliced into DSS-mapped chunks pulled by whichever
/// subflow has congestion window space (pull scheduling); chunks stranded on
/// a dead subflow are reinjected on the survivors.
class MptcpConnection : public DataProvider {
 public:
  MptcpConnection(net::Host* host, net::TransportPort base_local_port,
                  std::vector<net::IpAddr> remote_addrs,
                  net::TransportPort remote_port, MptcpConfig cfg);
  ~MptcpConnection() { hol_timer_.cancel(); }

  void connect();
  void app_write(std::int64_t bytes);
  void set_infinite_source(bool on) { infinite_ = on; }

  // --- DataProvider ---
  std::int64_t pull(std::int64_t max_bytes, std::uint64_t* dseq,
                    const TcpConnection& who) override;
  void on_dss_acked(std::uint64_t dseq, std::int64_t len) override;

  /// Contiguously acknowledged connection-level bytes.
  std::uint64_t data_acked() const { return contiguous_acked_; }
  std::uint64_t data_offered() const { return data_next_; }
  const std::vector<std::unique_ptr<TcpConnection>>& subflows() const {
    return subflows_;
  }
  std::size_t alive_subflows() const;
  std::uint32_t token() const { return token_; }
  std::uint64_t hol_reinjections() const { return hol_reinjections_; }

 private:
  void on_subflow_failed(std::size_t idx);
  void notify_all();
  void check_head_of_line();

  net::Host* host_;
  MptcpConfig cfg_;
  std::uint32_t token_;
  bool infinite_ = false;

  std::vector<std::unique_ptr<TcpConnection>> subflows_;
  std::shared_ptr<CoupledGroup> group_;  // null for uncoupled modes

  // Connection-level stream.
  std::uint64_t stream_len_ = 0;   // bytes the app wrote (or endless)
  std::uint64_t data_next_ = 0;    // next fresh dseq to hand out
  std::deque<std::pair<std::uint64_t, std::int64_t>> reinject_;
  std::map<std::uint64_t, std::uint64_t> acked_;  // dseq -> end (merged)
  std::uint64_t contiguous_acked_ = 0;

  // Head-of-line watchdog state.
  sim::EventHandle hol_timer_;
  std::uint64_t hol_last_acked_ = 0;
  int hol_stalls_ = 0;
  std::uint64_t hol_last_reinjected_ = ~0ull;
  std::uint64_t hol_reinjections_ = 0;
};

/// Receiver-side endpoint: accepts subflows on one port, groups them by
/// MPTCP token, reassembles the connection-level byte stream.
class MptcpListener {
 public:
  /// on_data(delta_bytes): fired when contiguous connection-level delivery
  /// advances for any grouped connection.
  using DataCallback = std::function<void(std::int64_t)>;

  MptcpListener(net::Host* host, net::TransportPort port, TcpConfig subflow_cfg);

  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }

  /// Total contiguous bytes delivered across all MPTCP connections.
  std::uint64_t bytes_delivered() const { return total_delivered_; }

  TcpListener& tcp_listener() { return listener_; }

 private:
  struct ConnState {
    std::map<std::uint64_t, std::uint64_t> received;  // dseq -> end (merged)
    std::uint64_t contiguous = 0;
  };

  void on_subflow_data(std::uint32_t token, std::int64_t len, std::uint64_t dseq);

  TcpListener listener_;
  std::map<std::uint32_t, ConnState> conns_;
  DataCallback on_data_;
  std::uint64_t total_delivered_ = 0;
};

}  // namespace cronets::transport
