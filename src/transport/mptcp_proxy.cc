#include "transport/mptcp_proxy.h"

#include <algorithm>

namespace cronets::transport {

// ------------------------------------------------------------------ egress

MptcpEgressProxy::MptcpEgressProxy(net::Host* host, net::TransportPort mptcp_port,
                                   net::IpAddr dest, net::TransportPort dest_port,
                                   TcpConfig cfg)
    : host_(host),
      listener_(host, mptcp_port, cfg),
      forward_(host, static_cast<net::TransportPort>(mptcp_port + 1), dest,
               dest_port, cfg),
      buffer_limit_(1 * 1024 * 1024) {
  listener_.set_on_data([this](std::int64_t n) {
    buffered_ += n;
    pump();
  });
  forward_.set_on_connected([this] {
    forward_up_ = true;
    pump();
  });
  forward_.set_on_drain([this] { pump(); }, buffer_limit_ / 2);
  forward_.connect();
}

void MptcpEgressProxy::pump() {
  if (!forward_up_) return;
  const std::int64_t room = buffer_limit_ - forward_.unsent_backlog();
  const std::int64_t n = std::min(buffered_, room);
  if (n <= 0) return;
  forward_.app_write(n);
  buffered_ -= n;
  relayed_ += static_cast<std::uint64_t>(n);
}

// ----------------------------------------------------------------- ingress

MptcpIngressProxy::MptcpIngressProxy(net::Host* host, net::TransportPort listen_port,
                                     std::vector<net::IpAddr> remote_addrs,
                                     net::TransportPort egress_port, MptcpConfig cfg,
                                     std::int64_t inflight_limit)
    : host_(host),
      listener_(host, listen_port, cfg.subflow),
      inflight_limit_(inflight_limit) {
  mptcp_ = std::make_unique<MptcpConnection>(
      host, static_cast<net::TransportPort>(listen_port + 1000),
      std::move(remote_addrs), egress_port, cfg);
  mptcp_->connect();
  listener_.set_on_accept([this](TcpConnection& c) { on_accept(c); });
}

void MptcpIngressProxy::on_accept(TcpConnection& client) {
  // One client stream per proxy pair (the gateway deployment model); a
  // second connection would need its own MPTCP session.
  if (client_) return;
  client_ = &client;
  client.set_auto_consume(false);
  client.set_on_data([this](std::int64_t n, std::uint64_t) {
    client_buffered_ += n;
    accepted_ += static_cast<std::uint64_t>(n);
    pump();
  });
  // Periodically drain as MPTCP acks progress (data-level acks arrive via
  // subflow acks; poll on a short pacing timer).
  on_timer();
}

void MptcpIngressProxy::on_timer() {
  pump();
  timer_ = host_->simulator()->schedule_in(sim::Time::milliseconds(50),
                                           [this] { on_timer(); });
}

void MptcpIngressProxy::pump() {
  if (!client_) return;
  const std::int64_t inflight =
      static_cast<std::int64_t>(mptcp_->data_offered() - mptcp_->data_acked());
  const std::int64_t room = inflight_limit_ - inflight;
  const std::int64_t n = std::min(client_buffered_, room);
  if (n <= 0) return;
  mptcp_->app_write(n);
  client_->app_consume(n);
  client_buffered_ -= n;
}

}  // namespace cronets::transport
