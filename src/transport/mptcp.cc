#include "transport/mptcp.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace cronets::transport {

namespace {
std::uint32_t next_token() {
  static std::uint32_t counter = 1;
  return counter++;
}
}  // namespace

MptcpConnection::MptcpConnection(net::Host* host, net::TransportPort base_local_port,
                                 std::vector<net::IpAddr> remote_addrs,
                                 net::TransportPort remote_port, MptcpConfig cfg)
    : host_(host), cfg_(cfg), token_(next_token()) {
  assert(!remote_addrs.empty());

  const bool coupled =
      cfg.coupling == Coupling::kOlia || cfg.coupling == Coupling::kLia;
  if (coupled) group_ = std::make_shared<CoupledGroup>();

  for (std::size_t i = 0; i < remote_addrs.size(); ++i) {
    TcpConfig sub = cfg.subflow;
    sub.remote_addr = remote_addrs[i];
    switch (cfg.coupling) {
      case Coupling::kOlia:
        sub.cc = [g = group_](std::int64_t mss) {
          return std::make_unique<OliaCc>(mss, g);
        };
        break;
      case Coupling::kLia:
        sub.cc = [g = group_](std::int64_t mss) {
          return std::make_unique<LiaCc>(mss, g);
        };
        break;
      case Coupling::kUncoupledCubic:
        sub.cc = CubicCc::factory();
        break;
      case Coupling::kUncoupledReno:
        sub.cc = RenoCc::factory();
        break;
    }
    auto conn = std::make_unique<TcpConnection>(
        host_, static_cast<net::TransportPort>(base_local_port + i),
        remote_addrs[i], remote_port, sub);
    conn->set_data_provider(this);
    conn->set_subflow_id(static_cast<int>(i));
    conn->set_mp_capable(true);
    conn->set_mp_token(token_);
    conn->set_on_failed([this, i] { on_subflow_failed(i); });
    subflows_.push_back(std::move(conn));
  }
}

void MptcpConnection::connect() {
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    host_->simulator()->schedule_in(
        cfg_.subflow_stagger * static_cast<std::int64_t>(i),
        [this, i] { subflows_[i]->connect(); });
  }
  if (cfg_.hol_check_interval > sim::Time::zero()) {
    hol_timer_ = host_->simulator()->schedule_in(cfg_.hol_check_interval,
                                                 [this] { check_head_of_line(); });
  }
}

void MptcpConnection::check_head_of_line() {
  hol_timer_ = host_->simulator()->schedule_in(cfg_.hol_check_interval,
                                               [this] { check_head_of_line(); });
  const bool outstanding = data_next_ > contiguous_acked_;
  if (!outstanding || contiguous_acked_ != hol_last_acked_) {
    hol_stalls_ = 0;
    hol_last_acked_ = contiguous_acked_;
    return;
  }
  if (++hol_stalls_ < 2) return;  // give the subflow ~2 intervals to recover

  // Delivery is stalled: find the lowest un-acked DSS range (the hole the
  // receiver is waiting on) and re-offer it so a healthy subflow pulls it.
  std::uint64_t lowest = ~0ull;
  std::int64_t len = 0;
  for (const auto& s : subflows_) {
    for (const auto& [d, l] : s->unacked_dss()) {
      if (d < lowest) {
        lowest = d;
        len = l;
      }
    }
  }
  if (lowest == ~0ull || lowest == hol_last_reinjected_) return;
  hol_last_reinjected_ = lowest;
  ++hol_reinjections_;
  reinject_.emplace_front(lowest, std::min(len, cfg_.hol_reinject_cap));
  hol_stalls_ = 0;
  notify_all();
}

void MptcpConnection::app_write(std::int64_t bytes) {
  stream_len_ += static_cast<std::uint64_t>(bytes);
  notify_all();
}

std::int64_t MptcpConnection::pull(std::int64_t max_bytes, std::uint64_t* dseq,
                                   const TcpConnection& who) {
  // Penalization (real MPTCP schedulers do the same): a subflow that is
  // RTO-cycling must not strand fresh chunks behind its stalls — starve it
  // until it makes forward progress again. Reinjections are likewise kept
  // away from unhealthy subflows.
  if (who.consecutive_rtos() > 0) return 0;
  if (!reinject_.empty()) {
    auto& [d, len] = reinject_.front();
    const std::int64_t grant = std::min(len, max_bytes);
    *dseq = d;
    d += static_cast<std::uint64_t>(grant);
    len -= grant;
    if (len <= 0) reinject_.pop_front();
    return grant;
  }
  if (infinite_) {
    const std::uint64_t want = data_next_ + 64ull * 1460ull;
    if (stream_len_ < want) stream_len_ = want;
  }
  const std::int64_t avail = static_cast<std::int64_t>(stream_len_ - data_next_);
  const std::int64_t grant = std::min(avail, max_bytes);
  if (grant <= 0) return 0;
  *dseq = data_next_;
  data_next_ += static_cast<std::uint64_t>(grant);
  return grant;
}

void MptcpConnection::on_dss_acked(std::uint64_t dseq, std::int64_t len) {
  // Merge [dseq, dseq+len) into the acked interval map.
  std::uint64_t lo = dseq;
  std::uint64_t hi = dseq + static_cast<std::uint64_t>(len);
  auto it = acked_.upper_bound(lo);
  if (it != acked_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = acked_.erase(prev);
    }
  }
  while (it != acked_.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = acked_.erase(it);
  }
  acked_[lo] = hi;

  auto front = acked_.begin();
  if (front != acked_.end() && front->first <= contiguous_acked_) {
    contiguous_acked_ = std::max(contiguous_acked_, front->second);
  }
}

std::size_t MptcpConnection::alive_subflows() const {
  std::size_t n = 0;
  for (const auto& s : subflows_) {
    if (!s->failed()) ++n;
  }
  return n;
}

void MptcpConnection::on_subflow_failed(std::size_t idx) {
  // Reinject every data-level range the dead subflow still held.
  for (auto [d, len] : subflows_[idx]->unacked_dss()) {
    // Skip ranges another subflow already got acknowledged (possible after
    // an earlier reinjection raced the original transmission).
    reinject_.emplace_back(d, len);
  }
  notify_all();
}

void MptcpConnection::notify_all() {
  for (auto& s : subflows_) {
    if (s->established()) s->notify_data_available();
  }
}

// ----------------------------------------------------------------- listener

MptcpListener::MptcpListener(net::Host* host, net::TransportPort port,
                             TcpConfig subflow_cfg)
    : listener_(host, port, subflow_cfg) {
  listener_.set_on_accept([this](TcpConnection& conn) {
    const std::uint32_t token = conn.mp_token();
    conn.set_on_data([this, token](std::int64_t len, std::uint64_t dseq) {
      on_subflow_data(token, len, dseq);
    });
  });
}

void MptcpListener::on_subflow_data(std::uint32_t token, std::int64_t len,
                                    std::uint64_t dseq) {
  ConnState& st = conns_[token];
  std::uint64_t lo = dseq;
  std::uint64_t hi = dseq + static_cast<std::uint64_t>(len);
  auto it = st.received.upper_bound(lo);
  if (it != st.received.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = st.received.erase(prev);
    }
  }
  while (it != st.received.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = st.received.erase(it);
  }
  st.received[lo] = hi;

  auto front = st.received.begin();
  if (front != st.received.end() && front->first == 0 &&
      front->second > st.contiguous) {
    const std::uint64_t delta = front->second - st.contiguous;
    st.contiguous = front->second;
    total_delivered_ += delta;
    if (on_data_) on_data_(static_cast<std::int64_t>(delta));
  }
}

}  // namespace cronets::transport
