#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "transport/tcp.h"

namespace cronets::transport {

/// iperf-style sink: accepts connections and counts delivered bytes.
class BulkSink {
 public:
  BulkSink(net::Host* host, net::TransportPort port, TcpConfig cfg)
      : listener_(host, port, cfg) {
    listener_.set_on_accept([this](TcpConnection& c) {
      c.set_on_data([this](std::int64_t n, std::uint64_t) {
        bytes_ += static_cast<std::uint64_t>(n);
      });
    });
  }

  std::uint64_t bytes_received() const { return bytes_; }
  TcpListener& listener() { return listener_; }

 private:
  TcpListener listener_;
  std::uint64_t bytes_ = 0;
};

/// iperf-style source: connects and streams data for as long as the
/// simulation runs. Throughput is measured at the sink.
class BulkSource {
 public:
  BulkSource(net::Host* host, net::TransportPort local_port, net::IpAddr dst,
             net::TransportPort dst_port, TcpConfig cfg)
      : conn_(std::make_unique<TcpConnection>(host, local_port, dst, dst_port, cfg)) {
    conn_->set_infinite_source(true);
  }

  void start() { conn_->connect(); }
  TcpConnection& connection() { return *conn_; }

 private:
  std::unique_ptr<TcpConnection> conn_;
};

/// "Eclipse mirror" style file server: on every accepted connection, writes
/// `file_bytes` and then closes.
class FileServer {
 public:
  FileServer(net::Host* host, net::TransportPort port, std::int64_t file_bytes,
             TcpConfig cfg)
      : listener_(host, port, cfg), file_bytes_(file_bytes) {
    listener_.set_on_accept([this](TcpConnection& c) {
      c.set_on_connected([&c, n = file_bytes_] {
        c.app_write(n);
        c.close();
      });
    });
  }

  TcpListener& listener() { return listener_; }

 private:
  TcpListener listener_;
  std::int64_t file_bytes_;
};

/// Client that downloads a file and records the completion time.
class FileDownloader {
 public:
  FileDownloader(net::Host* host, net::TransportPort local_port, net::IpAddr server,
                 net::TransportPort server_port, TcpConfig cfg)
      : conn_(std::make_unique<TcpConnection>(host, local_port, server, server_port,
                                              cfg)) {
    conn_->set_on_data([this](std::int64_t n, std::uint64_t) {
      bytes_ += static_cast<std::uint64_t>(n);
    });
  }

  void start(sim::Simulator* simv) {
    start_time_ = simv->now();
    conn_->set_on_peer_closed([this, simv] {
      done_ = true;
      finish_time_ = simv->now();
    });
    conn_->connect();
  }

  bool done() const { return done_; }
  std::uint64_t bytes() const { return bytes_; }
  /// Goodput of the completed download in bit/s (0 if not finished).
  double goodput_bps() const {
    if (!done_ || finish_time_ <= start_time_) return 0.0;
    return static_cast<double>(bytes_) * 8.0 / (finish_time_ - start_time_).to_seconds();
  }
  TcpConnection& connection() { return *conn_; }

 private:
  std::unique_ptr<TcpConnection> conn_;
  std::uint64_t bytes_ = 0;
  bool done_ = false;
  sim::Time start_time_{};
  sim::Time finish_time_{};
};

}  // namespace cronets::transport
