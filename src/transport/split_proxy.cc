#include "transport/split_proxy.h"

#include <algorithm>

namespace cronets::transport {

SplitTcpProxy::SplitTcpProxy(net::Host* host, net::TransportPort listen_port,
                             net::IpAddr dest, net::TransportPort dest_port,
                             TcpConfig cfg, std::int64_t buffer_limit)
    : host_(host),
      cfg_(cfg),
      buffer_limit_(buffer_limit),
      dest_(dest),
      dest_port_(dest_port),
      listener_(host, listen_port, cfg) {
  listener_.set_on_accept([this](TcpConnection& a) { on_accept(a); });
}

void SplitTcpProxy::on_accept(TcpConnection& a) {
  auto [daddr, dport] =
      resolver_ ? resolver_(a.remote_addr()) : std::make_pair(dest_, dest_port_);

  auto pair = std::make_unique<Pair>();
  Pair* p = pair.get();
  p->a = &a;
  TcpConfig fwd_cfg = cfg_;
  fwd_cfg.local_addr.reset();
  fwd_cfg.remote_addr.reset();
  p->b = std::make_unique<TcpConnection>(host_, next_port_++, daddr, dport, fwd_cfg);
  pairs_.push_back(std::move(pair));

  a.set_auto_consume(false);
  p->b->set_auto_consume(false);

  a.set_on_data([this, p](std::int64_t n, std::uint64_t) {
    p->buffered_a2b += n;
    pump(*p);
  });
  p->b->set_on_data([this, p](std::int64_t n, std::uint64_t) {
    p->buffered_b2a += n;
    pump(*p);
  });
  a.set_on_peer_closed([this, p] {
    p->a_closed = true;
    pump(*p);
  });
  p->b->set_on_peer_closed([this, p] {
    p->b_closed = true;
    pump(*p);
  });
  p->b->set_on_connected([this, p] { pump(*p); });
  a.set_on_drain([this, p] { pump(*p); }, buffer_limit_ / 2);
  p->b->set_on_drain([this, p] { pump(*p); }, buffer_limit_ / 2);

  p->b->connect();
}

void SplitTcpProxy::pump(Pair& p) {
  // A -> B relay, bounded by B's unsent backlog.
  if (p.b->established() && !p.b_close_sent) {
    const std::int64_t room = buffer_limit_ - p.b->unsent_backlog();
    const std::int64_t n = std::min(p.buffered_a2b, room);
    if (n > 0) {
      p.b->app_write(n);
      p.a->app_consume(n);
      p.buffered_a2b -= n;
      relayed_a2b_ += static_cast<std::uint64_t>(n);
    }
    if (p.a_closed && p.buffered_a2b == 0) {
      p.b_close_sent = true;
      p.b->close();
    }
  }
  // B -> A relay.
  if (p.a->established() && !p.a_close_sent) {
    const std::int64_t room = buffer_limit_ - p.a->unsent_backlog();
    const std::int64_t n = std::min(p.buffered_b2a, room);
    if (n > 0) {
      p.a->app_write(n);
      p.b->app_consume(n);
      p.buffered_b2a -= n;
      relayed_b2a_ += static_cast<std::uint64_t>(n);
    }
    if (p.b_closed && p.buffered_b2a == 0) {
      p.a_close_sent = true;
      p.a->close();
    }
  }
}

}  // namespace cronets::transport
