#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace cronets::transport {

/// Pluggable TCP congestion controller. Windows are kept in bytes (doubles,
/// so sub-MSS growth in congestion avoidance accumulates correctly).
///
/// The connection calls:
///  * on_ack        — new data cumulatively acknowledged
///  * on_loss_event — entering fast-recovery (at most once per window)
///  * on_timeout    — RTO fired
class CongestionControl {
 public:
  explicit CongestionControl(std::int64_t mss)
      : mss_(static_cast<double>(mss)), cwnd_(2.0 * mss_), ssthresh_(1e18) {}
  virtual ~CongestionControl() = default;

  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  virtual void on_ack(std::int64_t acked_bytes, sim::Time srtt, sim::Time now) = 0;
  virtual void on_loss_event(sim::Time now) = 0;
  virtual void on_timeout(sim::Time now) = 0;
  virtual std::string name() const = 0;

  /// HyStart-style delay signal: leave slow start without a loss event.
  void cap_slow_start() {
    if (in_slow_start()) ssthresh_ = cwnd_;
  }

 protected:
  /// RFC 3465 (ABC, L=2): slow-start growth per ACK is bounded by 2*MSS,
  /// no matter how many bytes one cumulative ACK covers — huge ACK jumps
  /// after loss recovery must not explode the window.
  double ss_increment(std::int64_t acked_bytes) const {
    return std::min(static_cast<double>(acked_bytes), 2.0 * mss_);
  }

 public:

 protected:
  double mss_;
  double cwnd_;      // bytes
  double ssthresh_;  // bytes
};

using CcFactory = std::function<std::unique_ptr<CongestionControl>(std::int64_t mss)>;

/// Classic NewReno-style AIMD.
class RenoCc : public CongestionControl {
 public:
  using CongestionControl::CongestionControl;
  void on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) override;
  void on_loss_event(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::string name() const override { return "reno"; }

  static CcFactory factory() {
    return [](std::int64_t mss) { return std::make_unique<RenoCc>(mss); };
  }
};

/// CUBIC (Ha, Rhee, Xu) — the default high-speed controller the paper's
/// Figure 13 configuration uses per subflow.
class CubicCc : public CongestionControl {
 public:
  explicit CubicCc(std::int64_t mss) : CongestionControl(mss) {}
  void on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) override;
  void on_loss_event(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::string name() const override { return "cubic"; }

  static CcFactory factory() {
    return [](std::int64_t mss) { return std::make_unique<CubicCc>(mss); };
  }

 private:
  double cubic_window(double t_sec) const;  // in MSS
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;

  double w_max_mss_ = 0.0;
  double k_ = 0.0;
  sim::Time epoch_start_{};
  bool in_epoch_ = false;
};

class LiaCc;
class OliaCc;

/// Shared state for one MPTCP connection's coupled subflow controllers.
/// Subflows register themselves on construction; the aggregate window /
/// RTT view drives the coupling terms.
class CoupledGroup {
 public:
  struct Member {
    CongestionControl* cc = nullptr;
    sim::Time srtt = sim::Time::milliseconds(100);
    // OLIA inter-loss byte counters.
    double bytes_since_loss = 0.0;
    double prev_interloss_bytes = 0.0;
  };

  /// Registers a subflow controller; returns its stable index.
  std::size_t register_member(CongestionControl* cc);
  Member& member(std::size_t i) { return members_[i]; }
  std::vector<Member>& members() { return members_; }

  double total_cwnd() const;
  /// LIA alpha (RFC 6356 §4): cwnd_total * max_i(w_i/rtt_i^2) / (sum_i w_i/rtt_i)^2.
  double lia_alpha() const;

 private:
  std::vector<Member> members_;
};

/// LIA — Linked Increases Algorithm (RFC 6356). Coupled increase caps the
/// aggregate at (roughly) the best single path's throughput.
class LiaCc : public CongestionControl {
 public:
  LiaCc(std::int64_t mss, std::shared_ptr<CoupledGroup> group)
      : CongestionControl(mss), group_(std::move(group)),
        self_(group_->register_member(this)) {}
  void on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) override;
  void on_loss_event(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::string name() const override { return "lia"; }

 private:
  std::shared_ptr<CoupledGroup> group_;
  std::size_t self_;
};

/// OLIA — Opportunistic LIA (Khalili et al.), the controller the paper uses
/// for Figure 12. Pareto-optimal re-balancing toward the currently best
/// paths while keeping the aggregate at best-single-path level.
class OliaCc : public CongestionControl {
 public:
  OliaCc(std::int64_t mss, std::shared_ptr<CoupledGroup> group)
      : CongestionControl(mss), group_(std::move(group)),
        self_(group_->register_member(this)) {}
  void on_ack(std::int64_t acked, sim::Time srtt, sim::Time now) override;
  void on_loss_event(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::string name() const override { return "olia"; }

 private:
  double alpha() const;
  std::shared_ptr<CoupledGroup> group_;
  std::size_t self_;
};

}  // namespace cronets::transport
