#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/host.h"
#include "net/packet.h"
#include "net/types.h"
#include "sim/simulator.h"
#include "transport/congestion.h"

namespace cronets::transport {

struct TcpConfig {
  std::int64_t mss = net::kMss;
  std::int64_t rcv_buf = 4 * 1024 * 1024;
  CcFactory cc = CubicCc::factory();
  sim::Time rto_min = sim::Time::milliseconds(200);
  sim::Time rto_max = sim::Time::seconds(60);
  sim::Time rto_initial = sim::Time::seconds(1);
  sim::Time delack_timeout = sim::Time::milliseconds(40);
  int delack_every = 2;
  sim::Time persist_interval = sim::Time::milliseconds(500);
  /// Tail Loss Probe (Linux 3.10+): after ~2 SRTT of ACK silence with data
  /// outstanding, re-send the tail segment to convert a would-be RTO stall
  /// into fast recovery.
  bool enable_tlp = true;
  /// Give up on the connection after this many consecutive RTOs (used by
  /// MPTCP to declare a subflow dead and reinject its data elsewhere).
  int max_consecutive_rtos = 12;
  /// Optional local address override (defaults to the host address);
  /// MPTCP subflows use alias addresses here.
  std::optional<net::IpAddr> local_addr;
  /// Optional remote address override for path steering.
  std::optional<net::IpAddr> remote_addr;
};

struct TcpStats {
  std::uint64_t segs_sent = 0;
  std::uint64_t segs_retransmitted = 0;
  std::uint64_t segs_received = 0;
  std::uint64_t bytes_sent = 0;         // payload bytes put on the wire (incl. retx)
  std::uint64_t bytes_retransmitted = 0;
  std::uint64_t bytes_acked = 0;        // unique payload bytes cumulatively acked
  std::uint64_t bytes_delivered = 0;    // in-order payload delivered to the app
  std::uint64_t rto_count = 0;
  std::uint64_t fast_retx_count = 0;
  std::uint64_t tlp_probes = 0;
  std::uint64_t dup_acks = 0;
  double rtt_sample_sum_ms = 0.0;
  std::uint64_t rtt_sample_count = 0;

  double avg_rtt_ms() const {
    return rtt_sample_count ? rtt_sample_sum_ms / static_cast<double>(rtt_sample_count)
                            : 0.0;
  }
  /// tstat-style retransmission rate: retransmitted bytes / sent bytes.
  double retransmission_rate() const {
    return bytes_sent ? static_cast<double>(bytes_retransmitted) /
                            static_cast<double>(bytes_sent)
                      : 0.0;
  }
};

/// Supplies connection-level (MPTCP) data to a subflow and learns which
/// data-level ranges made it to the peer.
class TcpConnection;

class DataProvider {
 public:
  virtual ~DataProvider() = default;
  /// Hand out up to `max_bytes` of connection-level data to subflow `who`.
  /// Returns the number of bytes granted (0 if none available — e.g. the
  /// scheduler is penalizing an unhealthy subflow) and sets `*dseq` to the
  /// data sequence of the first byte.
  virtual std::int64_t pull(std::int64_t max_bytes, std::uint64_t* dseq,
                            const TcpConnection& who) = 0;
  /// A pulled range has been cumulatively acknowledged at subflow level.
  virtual void on_dss_acked(std::uint64_t dseq, std::int64_t len) = 0;
};

/// A NewReno-structured TCP connection with pluggable congestion control,
/// timestamp-based RTT sampling, delayed ACKs, zero-window persist probes
/// and optional MPTCP data-sequence mapping.
///
/// Data transfer is full duplex: both sides may app_write(). Payload bytes
/// are simulated by length only; sequence arithmetic is exact.
class TcpConnection : public net::SegmentSink {
 public:
  enum class State { kClosed, kSynSent, kSynReceived, kEstablished, kFinWait, kDone };

  using ConnectedCallback = std::function<void()>;
  /// (bytes, dss_seq) — dss_seq only meaningful when the peer sent DSS info.
  using DataCallback = std::function<void(std::int64_t, std::uint64_t)>;
  using ClosedCallback = std::function<void()>;
  using FailedCallback = std::function<void()>;

  /// Active open: call connect() afterwards.
  TcpConnection(net::Host* host, net::TransportPort local_port, net::IpAddr remote,
                net::TransportPort remote_port, TcpConfig cfg);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Start the three-way handshake (sends SYN).
  void connect();
  /// Passive open from a listener-dispatched SYN.
  void accept_syn(const net::Packet& syn);

  /// Queue `bytes` of application data for transmission.
  void app_write(std::int64_t bytes);
  /// Endless source: the send buffer refills itself (iperf-style).
  void set_infinite_source(bool on) { infinite_source_ = on; }
  /// Half-close after everything queued so far has been sent.
  void close();

  /// Receiver-side flow control: if auto-consume is off, the app must
  /// consume delivered bytes or the advertised window shrinks (used by the
  /// split-TCP proxy for backpressure).
  void set_auto_consume(bool on) { auto_consume_ = on; }
  void app_consume(std::int64_t bytes);

  void set_on_connected(ConnectedCallback cb) { on_connected_ = std::move(cb); }
  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }
  void set_on_peer_closed(ClosedCallback cb) { on_peer_closed_ = std::move(cb); }
  void set_on_closed(ClosedCallback cb) { on_closed_ = std::move(cb); }
  void set_on_failed(FailedCallback cb) { on_failed_ = std::move(cb); }
  /// Fires whenever send-buffer backlog drops below `low_watermark` bytes.
  void set_on_drain(std::function<void()> cb, std::int64_t low_watermark);

  // --- MPTCP hooks ---
  void set_data_provider(DataProvider* p) { provider_ = p; }
  void set_subflow_id(int id) { subflow_id_ = id; }
  void set_mp_capable(bool on) { mp_capable_ = on; }
  void set_mp_token(std::uint32_t token) { mp_token_ = token; }
  /// DSS ranges handed to this subflow but not yet subflow-acked
  /// (reinjection candidates when the subflow dies).
  std::vector<std::pair<std::uint64_t, std::int64_t>> unacked_dss() const;
  /// Poke the sender (MPTCP calls this when new connection data appears).
  void notify_data_available() { try_send(); }

  // --- Introspection ---
  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  bool failed() const { return failed_; }
  const TcpStats& stats() const { return stats_; }
  sim::Time srtt() const { return srtt_; }
  const CongestionControl& cc() const { return *cc_; }
  std::int64_t unsent_backlog() const {
    return stream_end_ > snd_nxt_data()
               ? static_cast<std::int64_t>(stream_end_ - snd_nxt_data())
               : 0;
  }
  net::IpAddr local_addr() const { return local_addr_; }
  net::IpAddr remote_addr() const { return remote_; }
  net::TransportPort local_port() const { return local_port_; }
  net::TransportPort remote_port() const { return remote_port_; }
  std::uint32_t mp_token() const { return mp_token_; }
  /// Consecutive RTOs without forward progress (0 when healthy); the MPTCP
  /// scheduler uses this to stop feeding fresh data to a struggling subflow.
  int consecutive_rtos() const { return consecutive_rtos_; }

  void on_packet(const net::Packet& pkt) override;

 private:
  struct DssRange {
    std::uint64_t sseq;  // subflow stream offset of first byte
    std::uint64_t dseq;  // connection-level offset
    std::int64_t len;
    bool acked = false;
  };
  struct OooSegment {
    std::uint64_t seq;
    std::int64_t len;
    std::uint64_t dseq;
    bool has_dss;
  };

  sim::Simulator* simv() const { return host_->simulator(); }
  std::uint64_t snd_nxt_data() const { return snd_nxt_; }

  void handle_ack(const net::TcpSegment& seg, std::int64_t prev_rwnd,
                  bool new_sack_info);
  void maybe_finish();
  void handle_data(const net::TcpSegment& seg);
  void deliver_in_order();
  void try_send();
  void send_segment(std::uint64_t seq, std::int64_t payload, bool syn, bool fin,
                    bool force_ack = true, bool probe = false);
  void send_pure_ack();
  void maybe_ack_received_segment(bool out_of_order);
  void retransmit_one();
  /// Merge the segment's SACK blocks; returns true if they added anything.
  bool merge_sack(const net::TcpSegment& seg);
  std::int64_t sacked_bytes_above_una() const;
  /// Retransmit the first unsacked hole at/after retx_cursor_; returns
  /// false when no hole remains below the recovery point.
  bool retransmit_next_hole();
  bool try_hole_from(std::uint64_t start);
  /// Repair holes while the recovery pipe has room (RFC 6675 flavour).
  void repair_holes();
  void update_recovery_pipe();
  void fill_sack_blocks(net::TcpSegment* seg) const;
  void record_rtt(sim::Time sample);
  void arm_rto();
  void on_rto();
  void arm_persist();
  void arm_tlp();
  void on_tlp();
  void fail_connection();
  void check_drain();
  void top_up_from_sources();
  std::int64_t advertised_window() const;
  std::optional<std::pair<std::uint64_t, std::int64_t>> dss_for(std::uint64_t seq,
                                                                std::int64_t len) const;

  net::Host* host_;
  net::TransportPort local_port_;
  net::IpAddr local_addr_;
  net::IpAddr remote_;
  net::TransportPort remote_port_;
  TcpConfig cfg_;
  std::unique_ptr<CongestionControl> cc_;
  bool owns_port_binding_ = false;

  State state_ = State::kClosed;
  bool failed_ = false;

  // --- send side ---
  std::uint64_t snd_una_ = 0;   // oldest unacked payload byte
  std::uint64_t snd_nxt_ = 0;   // next payload byte to send
  std::uint64_t snd_max_ = 0;   // highest sequence ever sent (survives rewinds)
  std::uint64_t stream_end_ = 0;  // bytes written by the app (stream length)
  bool syn_sent_ = false;
  bool syn_acked_ = false;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::int64_t peer_rwnd_ = 65535;
  int dup_ack_count_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  // SACK scoreboard: merged [begin, end) ranges the peer reported holding.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::uint64_t retx_cursor_ = 0;  // next hole to repair during recovery
  std::int64_t recovery_out_ = 0;   // repair bytes believed still in flight
  std::uint64_t recovery_covered_ = 0;  // snd_una_ + sacked bytes, last seen
  int consecutive_rtos_ = 0;
  bool infinite_source_ = false;
  std::uint64_t max_seq_sent_ = 0;
  std::vector<DssRange> dss_map_;  // sorted by sseq; pruned on ack

  // --- timers ---
  sim::EventHandle rto_timer_;
  sim::Time rto_ = sim::Time::seconds(1);
  sim::Time srtt_{};
  sim::Time rttvar_{};
  sim::Time min_rtt_{};
  bool have_rtt_ = false;
  sim::EventHandle delack_timer_;
  int unacked_segments_ = 0;
  sim::EventHandle persist_timer_;
  sim::EventHandle tlp_timer_;

  // --- receive side ---
  std::uint64_t rcv_nxt_ = 0;
  bool peer_syn_seen_ = false;
  bool peer_fin_seen_ = false;
  std::uint64_t peer_fin_seq_ = 0;
  std::map<std::uint64_t, OooSegment> ooo_;  // keyed by seq
  std::int64_t ooo_bytes_ = 0;
  std::int64_t unconsumed_ = 0;
  bool auto_consume_ = true;
  sim::Time last_ts_for_echo_{};

  // --- MPTCP ---
  DataProvider* provider_ = nullptr;
  int subflow_id_ = 0;
  bool mp_capable_ = false;
  std::uint32_t mp_token_ = 0;

  // --- callbacks/stats ---
  ConnectedCallback on_connected_;
  DataCallback on_data_;
  ClosedCallback on_peer_closed_;
  ClosedCallback on_closed_;
  FailedCallback on_failed_;
  std::function<void()> on_drain_;
  std::int64_t drain_watermark_ = 0;
  TcpStats stats_;
};

/// Accepts incoming connections on a bound port; owns the accepted
/// TcpConnection objects and demuxes segments to them by (peer, port).
class TcpListener : public net::SegmentSink {
 public:
  using AcceptCallback = std::function<void(TcpConnection&)>;

  TcpListener(net::Host* host, net::TransportPort port, TcpConfig cfg);
  ~TcpListener() override;

  void set_on_accept(AcceptCallback cb) { on_accept_ = std::move(cb); }
  void on_packet(const net::Packet& pkt) override;

  const std::vector<std::unique_ptr<TcpConnection>>& connections() const {
    return connections_;
  }

 private:
  net::Host* host_;
  net::TransportPort port_;
  TcpConfig cfg_;
  AcceptCallback on_accept_;
  std::map<std::pair<std::uint32_t, net::TransportPort>, TcpConnection*> by_peer_;
  std::vector<std::unique_ptr<TcpConnection>> connections_;
};

}  // namespace cronets::transport
