#include "transport/tcp.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sim/env.h"

namespace cronets::transport {

using net::IpAddr;
using net::Packet;
using net::TcpSegment;
using sim::Time;

namespace {
/// TCP_DEBUG tracing guard, resolved once per process: loss-recovery and
/// RTO events fire millions of times in packet-level runs, so the hot path
/// must not call getenv per event.
bool tcp_debug() {
  static const bool on = sim::env_flag("TCP_DEBUG");
  return on;
}
}  // namespace

// Sequence-space convention: the SYN occupies sequence 0, application payload
// byte i lives at sequence 1+i, and the FIN occupies sequence 1+stream_len.
// All counters below (snd_una_, snd_nxt_, rcv_nxt_, stream_end_) are in this
// sequence space; stream_end_ = 1 + bytes written by the app.

TcpConnection::TcpConnection(net::Host* host, net::TransportPort local_port,
                             IpAddr remote, net::TransportPort remote_port,
                             TcpConfig cfg)
    : host_(host),
      local_port_(local_port),
      local_addr_(cfg.local_addr.value_or(host->addr())),
      remote_(cfg.remote_addr.value_or(remote)),
      remote_port_(remote_port),
      cfg_(cfg),
      cc_(cfg.cc(cfg.mss)) {
  stream_end_ = 1;
  rto_ = cfg.rto_initial;
}

TcpConnection::~TcpConnection() {
  rto_timer_.cancel();
  delack_timer_.cancel();
  persist_timer_.cancel();
  tlp_timer_.cancel();
  if (owns_port_binding_) host_->unbind(local_port_);
}

void TcpConnection::connect() {
  assert(state_ == State::kClosed);
  host_->bind(local_port_, this);
  owns_port_binding_ = true;
  state_ = State::kSynSent;
  syn_sent_ = true;
  send_segment(/*seq=*/0, /*payload=*/0, /*syn=*/true, /*fin=*/false,
               /*force_ack=*/false);
  snd_nxt_ = 1;
  snd_max_ = 1;
  arm_rto();
}

void TcpConnection::accept_syn(const Packet& syn) {
  assert(state_ == State::kClosed);
  assert(syn.tcp().syn);
  state_ = State::kSynReceived;
  local_addr_ = syn.outer().dst;  // reply from whatever address was targeted
  peer_syn_seen_ = true;
  rcv_nxt_ = 1;
  mp_capable_ = syn.tcp().mp_capable;
  mp_token_ = syn.tcp().mp_token;
  subflow_id_ = syn.tcp().subflow_id;
  last_ts_for_echo_ = syn.tcp().ts_val;
  syn_sent_ = true;
  send_segment(/*seq=*/0, /*payload=*/0, /*syn=*/true, /*fin=*/false);
  snd_nxt_ = 1;
  snd_max_ = 1;
  arm_rto();
}

void TcpConnection::app_write(std::int64_t bytes) {
  assert(bytes >= 0);
  assert(!fin_pending_ && "app_write after close()");
  stream_end_ += static_cast<std::uint64_t>(bytes);
  try_send();
}

void TcpConnection::close() {
  fin_pending_ = true;
  try_send();
}

void TcpConnection::app_consume(std::int64_t bytes) {
  assert(!auto_consume_);
  const bool was_closed = advertised_window() < cfg_.mss;
  unconsumed_ = std::max<std::int64_t>(0, unconsumed_ - bytes);
  if (was_closed && advertised_window() >= cfg_.mss && state_ == State::kEstablished) {
    send_pure_ack();  // window update
  }
}

void TcpConnection::set_on_drain(std::function<void()> cb, std::int64_t low_watermark) {
  on_drain_ = std::move(cb);
  drain_watermark_ = low_watermark;
}

std::int64_t TcpConnection::advertised_window() const {
  return std::max<std::int64_t>(0, cfg_.rcv_buf - ooo_bytes_ - unconsumed_);
}

std::vector<std::pair<std::uint64_t, std::int64_t>> TcpConnection::unacked_dss() const {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  for (const auto& r : dss_map_) {
    if (!r.acked) out.emplace_back(r.dseq, r.len);
  }
  return out;
}

// ------------------------------------------------------------------ receive

void TcpConnection::on_packet(const Packet& pkt) {
  if (state_ == State::kDone || failed_) return;
  ++stats_.segs_received;
  const TcpSegment& seg = pkt.tcp();

  if (seg.rst) {
    fail_connection();
    return;
  }

  const std::int64_t prev_rwnd = peer_rwnd_;
  peer_rwnd_ = static_cast<std::int64_t>(seg.rcv_wnd);
  if (seg.payload > 0 || seg.syn || seg.fin) last_ts_for_echo_ = seg.ts_val;

  if (seg.syn) {
    if (state_ == State::kSynSent) {
      // SYN|ACK from the server.
      peer_syn_seen_ = true;
      rcv_nxt_ = 1;
    } else if (state_ == State::kSynReceived || state_ == State::kEstablished) {
      // Duplicate SYN (our SYN|ACK was lost): re-ack below.
      if (!seg.has_ack) {
        send_pure_ack();
        return;
      }
    }
  }

  if (seg.has_ack) {
    const bool new_sack_info = merge_sack(seg);
    handle_ack(seg, prev_rwnd, new_sack_info);
  }

  if (seg.payload > 0) {
    handle_data(seg);
  } else if (seg.fin) {
    peer_fin_seen_ = true;
    peer_fin_seq_ = seg.seq;
    if (rcv_nxt_ == peer_fin_seq_) {
      ++rcv_nxt_;
      send_pure_ack();
      if (on_peer_closed_) on_peer_closed_();
      maybe_finish();
    } else {
      send_pure_ack();
    }
  } else if (seg.syn && state_ == State::kEstablished && !seg.has_ack) {
    send_pure_ack();
  }

  if (seg.win_probe) send_pure_ack();

  // A pure window update can unblock the sender.
  if (peer_rwnd_ > prev_rwnd) try_send();
}

void TcpConnection::handle_ack(const TcpSegment& seg, std::int64_t prev_rwnd,
                               bool new_sack_info) {
  const Time now = simv()->now();

  if (seg.ack > snd_max_) return;  // acks data we never sent; ignore

  if (seg.ack > snd_una_) {
    std::int64_t newly = static_cast<std::int64_t>(seg.ack - snd_una_);
    // Discount the virtual SYN/FIN bytes from payload accounting.
    std::int64_t payload_acked = newly;
    if (!syn_acked_ && seg.ack >= 1) {
      syn_acked_ = true;
      --payload_acked;
    }
    if (fin_sent_ && !fin_acked_ && seg.ack >= stream_end_ + 1) {
      fin_acked_ = true;
      --payload_acked;
    }
    snd_una_ = seg.ack;
    consecutive_rtos_ = 0;
    stats_.bytes_acked += static_cast<std::uint64_t>(std::max<std::int64_t>(0, payload_acked));

    // RTT sample from the echoed timestamp.
    if (seg.ts_echo != Time{}) record_rtt(now - seg.ts_echo);

    // Notify the MPTCP provider of data-level progress and prune the map.
    if (provider_ && !dss_map_.empty()) {
      const std::uint64_t acked_payload_end = std::min(snd_una_, stream_end_);
      for (auto& r : dss_map_) {
        if (!r.acked && r.sseq + static_cast<std::uint64_t>(r.len) <= acked_payload_end) {
          r.acked = true;
          provider_->on_dss_acked(r.dseq, r.len);
        }
      }
      while (!dss_map_.empty() && dss_map_.front().acked) {
        dss_map_.erase(dss_map_.begin());
      }
    }

    // Drop scoreboard entries the cumulative ack made redundant.
    while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
      sacked_.erase(sacked_.begin());
    }
    if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
      const std::uint64_t end = sacked_.begin()->second;
      sacked_.erase(sacked_.begin());
      sacked_[snd_una_] = end;
    }

    if (in_recovery_) {
      update_recovery_pipe();
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        dup_ack_count_ = 0;
      } else {
        // Partial ack: repair holes as the recovery pipe drains.
        retx_cursor_ = std::max(retx_cursor_, snd_una_);
        repair_holes();
      }
    } else {
      dup_ack_count_ = 0;
      if (payload_acked > 0 || seg.ack == 1) {
        cc_->on_ack(std::max<std::int64_t>(payload_acked, 0), srtt_, now);
      }
    }

    // State transitions.
    if (state_ == State::kSynSent && syn_acked_ && peer_syn_seen_) {
      state_ = State::kEstablished;
      send_pure_ack();
      if (on_connected_) on_connected_();
    } else if (state_ == State::kSynReceived && syn_acked_) {
      state_ = State::kEstablished;
      if (on_connected_) on_connected_();
    }

    // After a rewind (go-back-N) the ack may land beyond snd_nxt_; resume
    // sending from there instead of re-sending already-received data.
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    if (snd_max_ > snd_una_) {
      arm_rto();
      arm_tlp();
    } else {
      rto_timer_.cancel();
      tlp_timer_.cancel();
      rto_ = std::max(cfg_.rto_initial, srtt_ * 2);
    }

    check_drain();
    try_send();
  } else if (seg.ack == snd_una_ && !seg.syn && seg.payload == 0 &&
             snd_max_ > snd_una_ &&
             // RFC 6675: only ACKs that report NEW data at the receiver
             // count as duplicates — stale repairs arriving after an RTO
             // produce ACKs with no new SACK info and must not trigger a
             // fresh (tiny-window) recovery.
             new_sack_info &&
             // Out-of-order buffering at the receiver legitimately shrinks
             // the advertised window, so only a window *increase* (a pure
             // window update) disqualifies a duplicate ACK.
             static_cast<std::int64_t>(seg.rcv_wnd) <= prev_rwnd) {
    ++dup_ack_count_;
    ++stats_.dup_acks;
    if (dup_ack_count_ == 3 && !in_recovery_ && snd_una_ > recover_) {
      // RFC 6582 "careful" variant: while still repairing a window that
      // already cost us an RTO or recovery (snd_una_ <= recover_), more
      // duplicate ACKs must not trigger another window reduction.
      in_recovery_ = true;
      recover_ = snd_max_;
      retx_cursor_ = snd_una_;
      recovery_out_ = 0;
      recovery_covered_ = snd_una_ + static_cast<std::uint64_t>(sacked_bytes_above_una());
      cc_->on_loss_event(now);
      ++stats_.fast_retx_count;
      if (tcp_debug()) fprintf(stderr, "[%.3f] FR enter una=%llu recover=%llu cwnd=%.0f\n", now.to_seconds(), (unsigned long long)snd_una_, (unsigned long long)recover_, cc_->cwnd());
      if (!retransmit_next_hole()) retransmit_one();
      arm_rto();
    } else if (dup_ack_count_ > 3 && in_recovery_) {
      // Every further dup ack signals one more segment left the network.
      update_recovery_pipe();
      repair_holes();
    }
  }

  maybe_finish();
}

void TcpConnection::maybe_finish() {
  // Teardown: our FIN acked; done once the peer's FIN has also arrived.
  if (!fin_acked_ || state_ == State::kDone) return;
  if (peer_fin_seen_ && rcv_nxt_ > peer_fin_seq_) {
    state_ = State::kDone;
    rto_timer_.cancel();
    delack_timer_.cancel();
    persist_timer_.cancel();
    tlp_timer_.cancel();
    if (on_closed_) on_closed_();
  } else {
    state_ = State::kFinWait;
  }
}

void TcpConnection::handle_data(const TcpSegment& seg) {
  std::uint64_t seq = seg.seq;
  std::int64_t len = seg.payload;
  std::uint64_t dseq = seg.dss_seq;
  const bool has_dss = seg.dss_len > 0;

  if (seq + static_cast<std::uint64_t>(len) <= rcv_nxt_) {
    // Entirely duplicate: re-ack immediately.
    maybe_ack_received_segment(/*out_of_order=*/true);
    return;
  }
  if (seq < rcv_nxt_) {
    const std::uint64_t skip = rcv_nxt_ - seq;
    seq += skip;
    len -= static_cast<std::int64_t>(skip);
    dseq += skip;
  }

  if (seq == rcv_nxt_) {
    rcv_nxt_ += static_cast<std::uint64_t>(len);
    stats_.bytes_delivered += static_cast<std::uint64_t>(len);
    if (!auto_consume_) unconsumed_ += len;
    if (on_data_) on_data_(len, dseq);
    deliver_in_order();
    // FIN that was waiting for this data.
    if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
      ++rcv_nxt_;
      send_pure_ack();
      if (on_peer_closed_) on_peer_closed_();
      return;
    }
    maybe_ack_received_segment(/*out_of_order=*/!ooo_.empty());
  } else {
    // Out of order: buffer and send an immediate duplicate ACK.
    auto it = ooo_.find(seq);
    if (it == ooo_.end()) {
      ooo_[seq] = OooSegment{seq, len, dseq, has_dss};
      ooo_bytes_ += len;
    }
    maybe_ack_received_segment(/*out_of_order=*/true);
  }
}

void TcpConnection::deliver_in_order() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->second.seq <= rcv_nxt_) {
    OooSegment s = it->second;
    it = ooo_.erase(it);
    ooo_bytes_ -= s.len;
    if (s.seq + static_cast<std::uint64_t>(s.len) <= rcv_nxt_) continue;
    if (s.seq < rcv_nxt_) {
      const std::uint64_t skip = rcv_nxt_ - s.seq;
      s.seq += skip;
      s.len -= static_cast<std::int64_t>(skip);
      s.dseq += skip;
    }
    rcv_nxt_ += static_cast<std::uint64_t>(s.len);
    stats_.bytes_delivered += static_cast<std::uint64_t>(s.len);
    if (!auto_consume_) unconsumed_ += s.len;
    if (on_data_) on_data_(s.len, s.dseq);
    it = ooo_.begin();  // restart: delivery may have bridged to the next hole
  }
}

void TcpConnection::maybe_ack_received_segment(bool out_of_order) {
  ++unacked_segments_;
  if (out_of_order || unacked_segments_ >= cfg_.delack_every) {
    delack_timer_.cancel();
    send_pure_ack();
    return;
  }
  if (!delack_timer_.pending()) {
    delack_timer_ = simv()->schedule_in(cfg_.delack_timeout, [this] {
      if (unacked_segments_ > 0) send_pure_ack();
    });
  }
}

// --------------------------------------------------------------------- send

void TcpConnection::top_up_from_sources() {
  if (infinite_source_) {
    const std::uint64_t want = snd_nxt_ + 64 * static_cast<std::uint64_t>(cfg_.mss);
    if (stream_end_ < want) stream_end_ = want;
  }
}

std::optional<std::pair<std::uint64_t, std::int64_t>> TcpConnection::dss_for(
    std::uint64_t seq, std::int64_t len) const {
  // seq is in sequence space; payload byte offset is seq-1 == DssRange::sseq.
  const std::uint64_t off = seq - 1;
  for (const auto& r : dss_map_) {
    if (off >= r.sseq && off < r.sseq + static_cast<std::uint64_t>(r.len)) {
      const std::int64_t within = static_cast<std::int64_t>(off - r.sseq);
      return std::make_pair(r.dseq + static_cast<std::uint64_t>(within),
                            std::min(len, r.len - within));
    }
  }
  return std::nullopt;
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kSynReceived &&
      state_ != State::kFinWait) {
    return;
  }
  if (failed_) return;
  top_up_from_sources();

  const std::int64_t wnd =
      std::min(static_cast<std::int64_t>(cc_->cwnd()), peer_rwnd_);
  bool sent = false;

  while (true) {
    // Never (re)send bytes the peer already SACKed (matters after an RTO
    // rewound snd_nxt_ below ranges the receiver holds).
    if (!sacked_.empty()) {
      auto it = sacked_.upper_bound(snd_nxt_);
      if (it != sacked_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > snd_nxt_) {
          snd_nxt_ = prev->second;
          continue;
        }
      }
    }
    const std::int64_t in_flight = static_cast<std::int64_t>(snd_nxt_ - snd_una_);
    std::int64_t space = wnd - in_flight;
    if (space <= 0) break;

    // Pull MPTCP data on demand.
    std::int64_t avail = static_cast<std::int64_t>(stream_end_ - snd_nxt_);
    if (avail <= 0 && provider_) {
      std::uint64_t dseq = 0;
      const std::int64_t granted = provider_->pull(cfg_.mss, &dseq, *this);
      if (granted > 0) {
        dss_map_.push_back(DssRange{stream_end_ - 1, dseq, granted});
        stream_end_ += static_cast<std::uint64_t>(granted);
        avail = static_cast<std::int64_t>(stream_end_ - snd_nxt_);
      }
    }

    std::int64_t len = std::min({cfg_.mss, avail, space});
    if (len <= 0) break;
    // Stop short of the next SACKed range.
    if (!sacked_.empty()) {
      auto nxt = sacked_.lower_bound(snd_nxt_ + 1);
      if (nxt != sacked_.end() &&
          nxt->first < snd_nxt_ + static_cast<std::uint64_t>(len)) {
        len = static_cast<std::int64_t>(nxt->first - snd_nxt_);
      }
    }
    // Segments must not straddle a DSS mapping boundary.
    if (provider_) {
      if (auto d = dss_for(snd_nxt_, len)) len = d->second;
    }
    const bool last_chunk =
        fin_pending_ && (snd_nxt_ + static_cast<std::uint64_t>(len) == stream_end_);
    send_segment(snd_nxt_, len, /*syn=*/false, /*fin=*/last_chunk && !fin_sent_);
    snd_nxt_ += static_cast<std::uint64_t>(len);
    if (last_chunk && !fin_sent_) {
      fin_sent_ = true;
      ++snd_nxt_;  // the FIN's virtual byte
    }
    snd_max_ = std::max(snd_max_, snd_nxt_);
    sent = true;
  }

  // Data-less FIN.
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == stream_end_ &&
      wnd > static_cast<std::int64_t>(snd_nxt_ - snd_una_)) {
    send_segment(snd_nxt_, 0, /*syn=*/false, /*fin=*/true);
    fin_sent_ = true;
    ++snd_nxt_;
    snd_max_ = std::max(snd_max_, snd_nxt_);
    sent = true;
  }

  // Arm (but never restart) the retransmission timer: restarting on every
  // send would let a stuck recovery suppress its own RTO forever.
  if ((sent || snd_max_ > snd_una_) && !rto_timer_.pending()) arm_rto();
  if (sent) arm_tlp();
  if (peer_rwnd_ <= 0 &&
      (stream_end_ > snd_nxt_ || (fin_pending_ && !fin_sent_))) {
    arm_persist();
  }
}

void TcpConnection::send_segment(std::uint64_t seq, std::int64_t payload, bool syn,
                                 bool fin, bool force_ack, bool probe) {
  Packet pkt;
  pkt.headers.push_back(net::Ipv4Header{
      .src = local_addr_, .dst = remote_, .proto = net::IpProto::kTcp});
  TcpSegment seg;
  seg.sport = local_port_;
  seg.dport = remote_port_;
  seg.seq = seq;
  seg.payload = payload;
  seg.syn = syn;
  seg.fin = fin;
  seg.win_probe = probe;
  seg.has_ack = force_ack && (peer_syn_seen_ || state_ != State::kClosed);
  if (syn && state_ == State::kSynSent) seg.has_ack = false;
  seg.ack = rcv_nxt_;
  seg.rcv_wnd = static_cast<std::uint32_t>(
      std::min<std::int64_t>(advertised_window(), 0xffffffffLL));
  seg.ts_val = simv()->now();
  seg.ts_echo = last_ts_for_echo_;
  if (seg.has_ack) fill_sack_blocks(&seg);
  seg.mp_capable = mp_capable_;
  seg.mp_token = mp_token_;
  seg.subflow_id = subflow_id_;
  if (payload > 0 && provider_) {
    if (auto d = dss_for(seq, payload)) {
      seg.dss_seq = d->first;
      seg.dss_len = payload;
    }
  }
  pkt.body = seg;

  ++stats_.segs_sent;
  if (payload > 0) {
    stats_.bytes_sent += static_cast<std::uint64_t>(payload);
    if (seq < max_seq_sent_) {
      // Sending below the high-water mark == retransmission.
      stats_.bytes_retransmitted += static_cast<std::uint64_t>(payload);
      ++stats_.segs_retransmitted;
    }
    max_seq_sent_ = std::max(max_seq_sent_, seq + static_cast<std::uint64_t>(payload));
  }
  if (unacked_segments_ > 0 && seg.has_ack) {
    unacked_segments_ = 0;
    delack_timer_.cancel();
  }
  host_->send(std::move(pkt));
}

void TcpConnection::send_pure_ack() {
  unacked_segments_ = 0;
  delack_timer_.cancel();
  Packet pkt;
  pkt.headers.push_back(net::Ipv4Header{
      .src = local_addr_, .dst = remote_, .proto = net::IpProto::kTcp});
  TcpSegment seg;
  seg.sport = local_port_;
  seg.dport = remote_port_;
  seg.seq = snd_nxt_;
  seg.payload = 0;
  seg.has_ack = true;
  seg.ack = rcv_nxt_;
  seg.rcv_wnd = static_cast<std::uint32_t>(
      std::min<std::int64_t>(advertised_window(), 0xffffffffLL));
  seg.ts_val = simv()->now();
  seg.ts_echo = last_ts_for_echo_;
  fill_sack_blocks(&seg);
  seg.subflow_id = subflow_id_;
  pkt.body = seg;
  ++stats_.segs_sent;
  host_->send(std::move(pkt));
}

bool TcpConnection::merge_sack(const net::TcpSegment& seg) {
  bool changed = false;
  for (const auto& [b0, e0] : seg.sack) {
    std::uint64_t b = std::max(b0, snd_una_);
    std::uint64_t e = e0;
    if (e <= b) continue;
    auto it = sacked_.upper_bound(b);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) {
        if (prev->first <= b && prev->second >= e) continue;  // fully known
        b = prev->first;
        e = std::max(e, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= e) {
      e = std::max(e, it->second);
      it = sacked_.erase(it);
    }
    sacked_[b] = e;
    changed = true;
  }
  return changed;
}

std::int64_t TcpConnection::sacked_bytes_above_una() const {
  std::int64_t n = 0;
  for (const auto& [b, e] : sacked_) {
    if (e > snd_una_) n += static_cast<std::int64_t>(e - std::max(b, snd_una_));
  }
  return n;
}

bool TcpConnection::retransmit_next_hole() {
  // A repair that is itself lost is recovered by the RTO (pre-RACK stacks
  // behave the same way); re-repairing on duplicate ACKs would spray
  // spurious retransmissions whenever the tail keeps getting SACKed.
  return try_hole_from(std::max(retx_cursor_, snd_una_));
}

bool TcpConnection::try_hole_from(std::uint64_t start) {
  // Repair the first gap the peer's SACK blocks reveal, starting at the
  // cursor so each ack event repairs a fresh hole.
  const std::uint64_t payload_limit =
      std::min(recover_, std::min(stream_end_, snd_max_));
  std::uint64_t seq = start;
  while (seq < payload_limit) {
    auto it = sacked_.upper_bound(seq);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > seq) {
        seq = prev->second;  // inside a sacked run: skip past it
        continue;
      }
    }
    if (sacked_.empty() || it == sacked_.end()) {
      // No SACK information above seq: only the very first hole (at
      // snd_una_) is known to be lost; further repairs wait for partial
      // acks or more SACK blocks.
      if (seq != snd_una_) return false;
    }
    const std::uint64_t next_sacked =
        (it != sacked_.end()) ? it->first : payload_limit;
    std::int64_t len = static_cast<std::int64_t>(
        std::min({static_cast<std::uint64_t>(cfg_.mss) + seq, next_sacked,
                  payload_limit}) -
        seq);
    if (len <= 0) return false;
    if (provider_) {
      if (auto d = dss_for(seq, len)) len = d->second;
    }
    const bool is_fin =
        fin_sent_ && (seq + static_cast<std::uint64_t>(len) == stream_end_);
    send_segment(seq, len, /*syn=*/false, is_fin);
    retx_cursor_ = seq + static_cast<std::uint64_t>(len);
    recovery_out_ += len;
    return true;
  }
  return false;
}

void TcpConnection::update_recovery_pipe() {
  // "Covered" bytes (cumulatively acked or SACKed) only grow during a
  // recovery episode; growth means repairs or stragglers arrived and the
  // pipe drained by that much.
  const std::uint64_t covered =
      snd_una_ + static_cast<std::uint64_t>(sacked_bytes_above_una());
  if (covered > recovery_covered_) {
    recovery_out_ = std::max<std::int64_t>(
        0, recovery_out_ - static_cast<std::int64_t>(covered - recovery_covered_));
    recovery_covered_ = covered;
  }
}

void TcpConnection::repair_holes() {
  const std::int64_t wnd =
      std::min(static_cast<std::int64_t>(cc_->cwnd()), peer_rwnd_);
  // Keep per-event bursts modest: the ack clock paces recovery, exactly as
  // a real SACK sender's pipe algorithm does.
  int burst = 16;
  while (burst-- > 0 && recovery_out_ + cfg_.mss <= wnd) {
    if (!retransmit_next_hole()) {
      try_send();  // no repairable hole: recovery may forward new data
      break;
    }
  }
}

void TcpConnection::fill_sack_blocks(net::TcpSegment* seg) const {
  // Report up to 3 merged out-of-order runs, lowest first.
  auto it = ooo_.begin();
  while (it != ooo_.end() && seg->sack.size() < 3) {
    std::uint64_t b = it->second.seq;
    std::uint64_t e = b + static_cast<std::uint64_t>(it->second.len);
    ++it;
    while (it != ooo_.end() && it->second.seq <= e) {
      e = std::max(e, it->second.seq + static_cast<std::uint64_t>(it->second.len));
      ++it;
    }
    seg->sack.emplace_back(b, e);
  }
}

void TcpConnection::retransmit_one() {
  if (snd_una_ >= snd_max_) return;
  if (snd_una_ == 0 && !syn_acked_) {
    // Retransmit the SYN (or SYN|ACK).
    send_segment(0, 0, /*syn=*/true, /*fin=*/false,
                 /*force_ack=*/state_ != State::kSynSent);
    return;
  }
  if (fin_sent_ && snd_una_ == stream_end_ && !fin_acked_) {
    send_segment(snd_una_, 0, /*syn=*/false, /*fin=*/true);
    return;
  }
  std::int64_t len = std::min<std::int64_t>(
      cfg_.mss, static_cast<std::int64_t>(std::min(stream_end_, snd_max_) - snd_una_));
  if (len <= 0) return;
  if (provider_) {
    if (auto d = dss_for(snd_una_, len)) len = d->second;
  }
  const bool is_fin =
      fin_sent_ && (snd_una_ + static_cast<std::uint64_t>(len) == stream_end_);
  send_segment(snd_una_, len, /*syn=*/false, /*fin=*/is_fin);
}

// ------------------------------------------------------------------- timers

void TcpConnection::record_rtt(Time sample) {
  if (sample < Time::zero()) return;
  if (min_rtt_ == Time{} || sample < min_rtt_) min_rtt_ = sample;
  // HyStart-style delay-based slow-start exit: a clearly inflated RTT means
  // the bottleneck queue is filling; stop doubling before the cliff.
  // Threshold follows Linux: clamp(min_rtt/8, 4ms, 16ms).
  if (cc_->in_slow_start() && have_rtt_ &&
      sample > min_rtt_ + std::clamp(min_rtt_ / 8, Time::milliseconds(4),
                                     Time::milliseconds(16))) {
    cc_->cap_slow_start();
  }
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
  } else {
    const auto diff = (srtt_ > sample) ? (srtt_ - sample) : (sample - srtt_);
    rttvar_ = Time{(3 * rttvar_.ns() + diff.ns()) / 4};
    srtt_ = Time{(7 * srtt_.ns() + sample.ns()) / 8};
  }
  rto_ = std::clamp(srtt_ + rttvar_ * 4, cfg_.rto_min, cfg_.rto_max);
  stats_.rtt_sample_sum_ms += sample.to_milliseconds();
  ++stats_.rtt_sample_count;
}

void TcpConnection::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = simv()->schedule_in(rto_, [this] { on_rto(); });
}

void TcpConnection::on_rto() {
  if (snd_una_ >= snd_max_ && !(syn_sent_ && !syn_acked_)) return;
  ++consecutive_rtos_;
  ++stats_.rto_count;
  if (tcp_debug()) fprintf(stderr, "[%.3f] RTO una=%llu max=%llu cwnd=%.0f rto=%.0fms\n", simv()->now().to_seconds(), (unsigned long long)snd_una_, (unsigned long long)snd_max_, cc_->cwnd(), rto_.to_milliseconds());
  if (consecutive_rtos_ > cfg_.max_consecutive_rtos) {
    fail_connection();
    return;
  }
  cc_->on_timeout(simv()->now());
  in_recovery_ = false;
  dup_ack_count_ = 0;
  recover_ = snd_max_;  // RFC 6582: no fast recovery until this window heals
  // Keep the SACK scoreboard (like Linux): the go-back-N pass below skips
  // ranges the receiver already holds.
  retx_cursor_ = 0;
  // Go-back-N: rewind and let try_send stream it out again.
  snd_nxt_ = snd_una_;
  if (fin_sent_ && !fin_acked_) fin_sent_ = false;
  rto_ = std::min(rto_ * 2, cfg_.rto_max);
  if (!syn_acked_) {
    retransmit_one();
    snd_nxt_ = 1;
  } else {
    try_send();
  }
  arm_rto();
}

void TcpConnection::arm_persist() {
  if (persist_timer_.pending()) return;
  persist_timer_ = simv()->schedule_in(cfg_.persist_interval, [this] {
    if (failed_ || state_ == State::kDone) return;
    if (peer_rwnd_ <= 0) {
      send_segment(snd_nxt_, 0, false, false, /*force_ack=*/true, /*probe=*/true);
      arm_persist();
    }
  });
}

void TcpConnection::arm_tlp() {
  if (!cfg_.enable_tlp || in_recovery_) return;
  tlp_timer_.cancel();
  // PTO = max(2*SRTT, 10ms), and leave room below the RTO. Without an RTT
  // estimate yet, probing early would be spurious — wait half an RTO.
  Time pto = have_rtt_ ? std::max(srtt_ * 2, Time::milliseconds(10)) : rto_ / 2;
  // With at most one segment outstanding the peer may legitimately hold
  // its ACK for the delayed-ack timer — allow for it (Linux's WCDelAckT).
  if (snd_max_ - snd_una_ <= static_cast<std::uint64_t>(cfg_.mss)) {
    pto += cfg_.delack_timeout * 2;
  }
  if (pto >= rto_) return;
  tlp_timer_ = simv()->schedule_in(pto, [this] { on_tlp(); });
}

void TcpConnection::on_tlp() {
  // Probe only if data is still outstanding and nothing arrived meanwhile
  // (the timer is cancelled/re-armed on every ack).
  if (failed_ || state_ == State::kDone) return;
  if (snd_una_ >= snd_max_ || in_recovery_) return;
  // Re-send the tail segment: the last MSS (or less) below snd_max_,
  // clamped to payload bytes.
  const std::uint64_t payload_end = std::min(snd_max_, stream_end_);
  if (payload_end <= snd_una_) return;
  const std::uint64_t begin =
      std::max(snd_una_, payload_end - std::min<std::uint64_t>(
                                           payload_end - snd_una_,
                                           static_cast<std::uint64_t>(cfg_.mss)));
  std::int64_t len = static_cast<std::int64_t>(payload_end - begin);
  if (provider_) {
    if (auto d = dss_for(begin, len)) len = d->second;
  }
  if (len <= 0) return;
  ++stats_.tlp_probes;
  const bool is_fin = fin_sent_ && (begin + static_cast<std::uint64_t>(len) == stream_end_);
  send_segment(begin, len, /*syn=*/false, is_fin);
  // One probe per silence period; the RTO remains the backstop.
}

void TcpConnection::fail_connection() {
  if (failed_) return;
  failed_ = true;
  state_ = State::kDone;
  rto_timer_.cancel();
  delack_timer_.cancel();
  persist_timer_.cancel();
  tlp_timer_.cancel();
  if (on_failed_) on_failed_();
}

void TcpConnection::check_drain() {
  if (!on_drain_) return;
  if (unsent_backlog() <= drain_watermark_) on_drain_();
}

// ----------------------------------------------------------------- listener

TcpListener::TcpListener(net::Host* host, net::TransportPort port, TcpConfig cfg)
    : host_(host), port_(port), cfg_(cfg) {
  host_->bind(port_, this);
}

TcpListener::~TcpListener() { host_->unbind(port_); }

void TcpListener::on_packet(const Packet& pkt) {
  const TcpSegment& seg = pkt.tcp();
  const auto key = std::make_pair(pkt.outer().src.value(), seg.sport);
  auto it = by_peer_.find(key);
  if (it != by_peer_.end()) {
    it->second->on_packet(pkt);
    return;
  }
  if (!seg.syn || seg.has_ack) return;  // stray segment for a dead connection

  auto conn = std::make_unique<TcpConnection>(host_, port_, pkt.outer().src,
                                              seg.sport, cfg_);
  TcpConnection* raw = conn.get();
  by_peer_[key] = raw;
  connections_.push_back(std::move(conn));
  // Process the SYN before handing the connection to the acceptor so that
  // SYN-borne attributes (MPTCP token, subflow id, target alias) are
  // already populated. No data can arrive before the acceptor returns:
  // the peer must first see our SYN|ACK.
  raw->accept_syn(pkt);
  if (on_accept_) on_accept_(*raw);
}

}  // namespace cronets::transport
