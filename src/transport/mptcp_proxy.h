#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "transport/mptcp.h"
#include "transport/tcp.h"

namespace cronets::transport {

/// The paper's concluding future-work feature (§IX): MPTCP proxies that let
/// endpoints *without* MPTCP support benefit from CRONets. Deployed in
/// pairs — one at each site (e.g. inside each branch office's gateway):
///
///   client --TCP--> MptcpIngressProxy ==MPTCP(direct+overlays)==>
///       MptcpEgressProxy --TCP--> server
///
/// The ingress proxy terminates the client's plain TCP connection and
/// forwards its bytes over an MPTCP connection (one subflow per available
/// path); the egress proxy reassembles the stream and replays it to the
/// destination over plain TCP. Flow control is end-to-end: the ingress
/// stops reading from the client when too much data is in flight, and the
/// egress paces MPTCP delivery into the server connection's backlog.
///
/// The data plane is client -> server (uploads / request streams); the
/// reverse direction of the outer TCP connections carries only ACKs.
class MptcpEgressProxy {
 public:
  MptcpEgressProxy(net::Host* host, net::TransportPort mptcp_port,
                   net::IpAddr dest, net::TransportPort dest_port, TcpConfig cfg);

  std::uint64_t relayed_bytes() const { return relayed_; }

 private:
  void pump();

  net::Host* host_;
  MptcpListener listener_;
  TcpConnection forward_;
  std::int64_t buffered_ = 0;
  std::int64_t buffer_limit_;
  std::uint64_t relayed_ = 0;
  bool forward_up_ = false;
};

class MptcpIngressProxy {
 public:
  /// `remote_addrs`: the egress proxy's primary + per-overlay alias
  /// addresses (same contract as MptcpConnection).
  MptcpIngressProxy(net::Host* host, net::TransportPort listen_port,
                    std::vector<net::IpAddr> remote_addrs,
                    net::TransportPort egress_port, MptcpConfig cfg,
                    std::int64_t inflight_limit = 2 * 1024 * 1024);
  ~MptcpIngressProxy() { timer_.cancel(); }

  MptcpConnection& mptcp() { return *mptcp_; }
  std::uint64_t accepted_bytes() const { return accepted_; }

 private:
  void on_accept(TcpConnection& client);
  void on_timer();
  void pump();

  net::Host* host_;
  TcpListener listener_;
  std::unique_ptr<MptcpConnection> mptcp_;
  std::int64_t inflight_limit_;
  sim::EventHandle timer_;
  std::int64_t client_buffered_ = 0;
  TcpConnection* client_ = nullptr;
  std::uint64_t accepted_ = 0;
};

}  // namespace cronets::transport
