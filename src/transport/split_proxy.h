#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "transport/tcp.h"

namespace cronets::transport {

/// Split-TCP proxy (I-TCP style), the paper's "split-overlay" mode: the
/// overlay node terminates the client's TCP connection and opens a second
/// connection to the destination, relaying bytes in both directions with
/// bounded buffering (receive-window backpressure when the far side is
/// slower). Each leg runs its own congestion control over its own RTT,
/// which is where the Mathis-equation gain comes from.
class SplitTcpProxy {
 public:
  using DestResolver =
      std::function<std::pair<net::IpAddr, net::TransportPort>(net::IpAddr peer)>;

  SplitTcpProxy(net::Host* host, net::TransportPort listen_port, net::IpAddr dest,
                net::TransportPort dest_port, TcpConfig cfg,
                std::int64_t buffer_limit = 1 * 1024 * 1024);

  /// Override the (static) destination per accepted peer.
  void set_dest_resolver(DestResolver r) { resolver_ = std::move(r); }

  std::uint64_t relayed_a2b() const { return relayed_a2b_; }
  std::uint64_t relayed_b2a() const { return relayed_b2a_; }

 private:
  struct Pair {
    TcpConnection* a = nullptr;              // accepted (client-facing) leg
    std::unique_ptr<TcpConnection> b;        // forward (server-facing) leg
    std::int64_t buffered_a2b = 0;           // delivered by A, not yet written to B
    std::int64_t buffered_b2a = 0;
    bool a_closed = false;                   // peer half-closed toward us
    bool b_closed = false;
    bool b_close_sent = false;
    bool a_close_sent = false;
  };

  void on_accept(TcpConnection& a);
  void pump(Pair& p);

  net::Host* host_;
  TcpConfig cfg_;
  std::int64_t buffer_limit_;
  net::IpAddr dest_;
  net::TransportPort dest_port_;
  DestResolver resolver_;
  TcpListener listener_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  net::TransportPort next_port_ = 30000;
  std::uint64_t relayed_a2b_ = 0;
  std::uint64_t relayed_b2a_ = 0;
};

}  // namespace cronets::transport
