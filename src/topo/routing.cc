#include <algorithm>
#include <cassert>
#include <queue>

#include "topo/internet.h"

namespace cronets::topo {

namespace {
// Route classes, higher preferred (Gao-Rexford local preference).
constexpr int kSelf = 4;
constexpr int kViaCustomer = 3;
constexpr int kViaPeer = 2;
constexpr int kViaProvider = 1;
constexpr int kNone = 0;

struct PqItem {
  int len;
  int via;  // tie-break: lower neighbour id wins
  int node;
  bool operator>(const PqItem& o) const {
    if (len != o.len) return len > o.len;
    if (via != o.via) return via > o.via;
    return node > o.node;
  }
};
using MinPq = std::priority_queue<PqItem, std::vector<PqItem>, std::greater<>>;
}  // namespace

const std::vector<Routing::Entry>& Routing::to(int dst_as) {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = cache_.find(dst_as);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock: tables are deterministic, so losing the
  // insert race below just discards an identical duplicate.
  std::vector<Entry> table = compute(dst_as);
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.emplace(dst_as, std::move(table)).first->second;
}

std::vector<Routing::Entry> Routing::compute(int dst_as) const {
  const auto& ases = *ases_;
  const int n = static_cast<int>(ases.size());
  std::vector<Entry> table(n);
  table[dst_as] = Entry{dst_as, 0, kSelf};

  auto better = [](const Entry& cand, const Entry& cur) {
    if (cand.cls != cur.cls) return cand.cls > cur.cls;
    if (cand.len != cur.len) return cand.len < cur.len;
    return cand.next < cur.next;
  };

  // Pass 1 — customer routes: an AS u has one iff a chain of
  // provider->customer edges descends from u to dst. Propagate from dst
  // upward along "x -> provider of x" edges (Dijkstra, unit weights, with
  // deterministic tie-breaking).
  {
    MinPq pq;
    pq.push({0, dst_as, dst_as});
    while (!pq.empty()) {
      auto [len, via, u] = pq.top();
      pq.pop();
      const Entry& cur = table[u];
      if (cur.cls == kSelf && u != dst_as) continue;
      if (u != dst_as && (cur.cls != kViaCustomer || cur.len != len || cur.next != via))
        continue;  // stale
      for (const auto& a : ases[u].adj) {
        if (!a.up) continue;
        if (a.rel != Rel::kCustomerOf) continue;  // neighbour is u's provider
        const int p = a.nbr_as;
        Entry cand{u, len + 1, kViaCustomer};
        if (p != dst_as && better(cand, table[p])) {
          table[p] = cand;
          pq.push({cand.len, cand.next, p});
        }
      }
    }
  }

  // Pass 2 — peer routes: one settlement-free hop into a neighbour that has
  // a customer route (peers only export customer routes).
  std::vector<Entry> peer_routes(n);
  for (int u = 0; u < n; ++u) {
    if (table[u].cls >= kViaCustomer) continue;  // already has better
    for (const auto& a : ases[u].adj) {
      if (!a.up) continue;
      if (a.rel != Rel::kPeerWith) continue;
      const int v = a.nbr_as;
      if (table[v].cls == kViaCustomer || table[v].cls == kSelf) {
        Entry cand{v, table[v].len + 1, kViaPeer};
        if (better(cand, peer_routes[u])) peer_routes[u] = cand;
      }
    }
  }
  for (int u = 0; u < n; ++u) {
    if (peer_routes[u].cls == kViaPeer && better(peer_routes[u], table[u])) {
      table[u] = peer_routes[u];
    }
  }

  // Pass 3 — provider routes: providers export their chosen route (any
  // class) to customers; chains of up-edges allowed. Dijkstra from every AS
  // that already has a route, descending provider->customer edges.
  {
    MinPq pq;
    for (int u = 0; u < n; ++u) {
      if (table[u].cls != kNone) pq.push({table[u].len, table[u].next, u});
    }
    while (!pq.empty()) {
      auto [len, via, p] = pq.top();
      pq.pop();
      if (table[p].cls == kNone || table[p].len != len) continue;  // stale
      for (const auto& a : ases[p].adj) {
        if (!a.up) continue;
        if (a.rel != Rel::kProviderOf) continue;  // neighbour is p's customer
        const int c = a.nbr_as;
        if (table[c].cls >= kViaPeer) continue;  // prefers its own route
        Entry cand{p, len + 1, kViaProvider};
        if (better(cand, table[c])) {
          table[c] = cand;
          pq.push({cand.len, cand.next, c});
        }
      }
    }
  }

  return table;
}

std::vector<int> Routing::as_path(int src_as, int dst_as) {
  std::vector<int> path;
  if (src_as == dst_as) return {src_as};
  const auto& table = to(dst_as);
  int cur = src_as;
  path.push_back(cur);
  int guard = 0;
  while (cur != dst_as) {
    const Entry& e = table[cur];
    if (e.cls == kNone || e.next < 0) return {};  // unreachable
    cur = e.next;
    path.push_back(cur);
    if (++guard > static_cast<int>(ases_->size())) {
      assert(false && "routing loop");
      return {};
    }
  }
  return path;
}

}  // namespace cronets::topo
