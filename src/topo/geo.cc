#include <cmath>

#include "topo/types.h"

namespace cronets::topo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
double rad(double deg) { return deg * kPi / 180.0; }
}  // namespace

double distance_km(GeoPoint a, GeoPoint b) {
  const double dlat = rad(b.lat - a.lat);
  const double dlon = rad(b.lon - a.lon);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(rad(a.lat)) * std::cos(rad(b.lat)) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_ms(double km) {
  // ~200 km per ms in fiber, plus per-hop forwarding latency; real routes
  // are not great circles, so inflate distance by a fudge factor.
  return (km * 1.3) / 200.0 + 0.15;
}

GeoPoint region_center(Region r) {
  switch (r) {
    case Region::kNaEast: return {40.0, -76.0};
    case Region::kNaWest: return {37.5, -121.0};
    case Region::kEurope: return {50.0, 7.0};
    case Region::kAsia: return {34.0, 130.0};
    case Region::kSouthAmerica: return {-23.0, -47.0};
    case Region::kAustralia: return {-33.0, 150.0};
  }
  return {0.0, 0.0};
}

}  // namespace cronets::topo
