#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "topo/types.h"

namespace cronets::topo {

class Internet;

/// Thread-safe interning memo of policy-routed paths, keyed on
/// (src_endpoint, dst_endpoint). The paper-scale sweeps sample the same
/// few thousand paths over and over (every `measure()` call touches the
/// direct path plus both legs of every overlay candidate); this cache
/// computes each RouterPath once and hands out shared immutable references,
/// taking path expansion — and its per-call vector churn — off the hot
/// path entirely.
///
/// Mirrors the Routing::to() cache contract: `get` is safe to call
/// concurrently (reader/writer lock; a miss computes outside the lock and
/// the first insert wins, so all threads intern one object per pair).
/// `invalidate` must not race with queries — topology mutations happen in
/// the single-threaded setup phase between measurement sweeps.
class PathCache {
 public:
  explicit PathCache(Internet* topo) : topo_(topo) {}

  /// The interned policy path src -> dst (computed on first use).
  PathRef get(int ep_src, int ep_dst);

  /// Drop every interned path (topology changed). Outstanding PathRefs
  /// stay valid — they go stale, not dangling.
  void invalidate();

  /// Lifetime hit/miss counters (relaxed; exact in single-threaded runs).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Number of currently interned paths.
  std::size_t size() const;

 private:
  static std::uint64_t key(int ep_src, int ep_dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ep_src)) << 32) |
           static_cast<std::uint32_t>(ep_dst);
  }

  Internet* topo_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, PathRef> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace cronets::topo
