#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "topo/types.h"

namespace cronets::topo {

class Internet;

/// Thread-safe interning memo of policy-routed paths, keyed on
/// (src_endpoint, dst_endpoint). The paper-scale sweeps sample the same
/// few thousand paths over and over (every `measure()` call touches the
/// direct path plus both legs of every overlay candidate); this cache
/// computes each RouterPath once and hands out shared immutable references,
/// taking path expansion — and its per-call vector churn — off the hot
/// path entirely.
///
/// Mirrors the Routing::to() cache contract: `get` is safe to call
/// concurrently (reader/writer lock; a miss computes outside the lock and
/// the first insert wins, so all threads intern one object per pair).
/// `invalidate` must not race with queries — topology mutations happen in
/// the single-threaded setup phase between measurement sweeps.
class PathCache {
 public:
  explicit PathCache(Internet* topo) : topo_(topo) {}

  /// The interned policy path src -> dst (computed on first use).
  PathRef get(int ep_src, int ep_dst);

  /// The interned cloud-backbone path between two DC endpoints (see
  /// Internet::backbone_path). Lives in a separate key space — bit 63 of
  /// the packed key, which endpoint ids (non-negative ints) never set — so
  /// a DC pair's public policy path and its private backbone path are
  /// distinct entries. Invalidation is shared: a route-changing mutation
  /// drops both.
  PathRef get_backbone(int dc_ep_a, int dc_ep_b);

  /// Drop every interned path (topology changed). Outstanding PathRefs
  /// stay valid — they go stale, not dangling.
  void invalidate();

  /// Lifetime hit/miss counters (relaxed; exact in single-threaded runs).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Number of currently interned paths.
  std::size_t size() const;

 private:
  static constexpr std::uint64_t kBackboneKeyBit = 1ull << 63;
  static std::uint64_t key(int ep_src, int ep_dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ep_src)) << 32) |
           static_cast<std::uint32_t>(ep_dst);
  }
  /// Lookup-or-compute under the shared-lock protocol of `get`.
  PathRef get_keyed(std::uint64_t k, int ep_src, int ep_dst, bool backbone);

  Internet* topo_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, PathRef> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace cronets::topo
