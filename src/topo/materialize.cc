#include "topo/materialize.h"

#include <algorithm>
#include <cassert>

namespace cronets::topo {

namespace {
std::int64_t queue_limit_for(double capacity_bps) {
  // Rate-limited edge links (the 100 Mbps virtual NIC) get generous token
  // buckets — intercontinental flows need BDP-scale absorption; faster
  // links get ~50 ms of buffering, clamped to sane hardware ranges.
  if (capacity_bps <= 200e6) {
    return static_cast<std::int64_t>(capacity_bps / 8.0 * 0.12);
  }
  const double bytes = capacity_bps / 8.0 * 0.05;
  return static_cast<std::int64_t>(
      std::clamp(bytes, 128.0 * 1024, 4.0 * 1024 * 1024));
}

net::LinkSpec spec_for(const TopoLink& l, bool forward) {
  net::LinkSpec s;
  s.capacity_bps = l.capacity_bps;
  s.prop_delay = sim::Time::from_seconds(l.delay_ms / 1e3);
  s.queue_limit_bytes = queue_limit_for(l.capacity_bps);
  s.background = forward ? l.bg_fwd : l.bg_rev;
  return s;
}
}  // namespace

net::Host* Materializer::host(int endpoint_id) {
  auto it = hosts_.find(endpoint_id);
  if (it != hosts_.end()) return it->second;

  const Endpoint& ep = topo_->endpoint(endpoint_id);
  net::Host* h = net_->add_host(ep.name);
  net::Router* r = router(ep.access_router);
  // Access link: topo convention is router_a = access router, router_b = host.
  materialize_link(ep.access_link, r, h, /*a_is_router_a=*/true);
  hosts_[endpoint_id] = h;
  return h;
}

net::Router* Materializer::router(int router_id) {
  auto it = routers_.find(router_id);
  if (it != routers_.end()) return it->second;
  net::Router* r = net_->add_router(topo_->routers()[router_id].name);
  routers_[router_id] = r;
  return r;
}

std::pair<net::Link*, net::Link*> Materializer::materialize_link(int topo_link_id,
                                                                 net::Node* a,
                                                                 net::Node* b,
                                                                 bool a_is_router_a) {
  auto it = links_.find(topo_link_id);
  if (it != links_.end()) return it->second;

  const TopoLink& tl = topo_->links()[topo_link_id];
  // Create with canonical orientation: first node = router_a side.
  net::Node* ra = a_is_router_a ? a : b;
  net::Node* rb = a_is_router_a ? b : a;
  auto [fwd, rev] = net_->add_link(ra, rb, spec_for(tl, true), spec_for(tl, false));
  links_[topo_link_id] = {fwd, rev};
  return {fwd, rev};
}

net::Link* Materializer::link(int topo_link_id, bool forward) const {
  auto it = links_.find(topo_link_id);
  if (it == links_.end()) return nullptr;
  return forward ? it->second.first : it->second.second;
}

void Materializer::install_direction(const RouterPath& p, int ep_src, int ep_dst,
                                     net::IpAddr dst_addr) {
  assert(p.valid);
  net::Host* src = host(ep_src);
  net::Host* dst = host(ep_dst);

  // Node sequence: src host, p.routers..., dst host.
  std::vector<net::Node*> nodes;
  nodes.push_back(src);
  for (int rid : p.routers) nodes.push_back(router(rid));
  nodes.push_back(dst);
  assert(nodes.size() == p.traversals.size() + 1);

  for (std::size_t i = 0; i < p.traversals.size(); ++i) {
    const Traversal& t = p.traversals[i];
    net::Node* from = nodes[i];
    net::Node* to = nodes[i + 1];
    // Is `from` the topo link's router_a side for this traversal?
    const bool from_is_a = t.forward;
    auto [fwd, rev] = materialize_link(t.link_id, from, to, from_is_a);
    net::Link* hop = t.forward ? fwd : rev;
    // Install the next hop toward dst_addr at `from`.
    from->add_route(dst_addr, hop);
  }
}

void Materializer::add_pair(int ep_a, int ep_b) {
  net::Host* ha = host(ep_a);
  net::Host* hb = host(ep_b);
  // Interned paths: the packet-level slice reuses exactly the RouterPath
  // objects the analytic sweeps measured.
  const PathRef fwd = topo_->cached_path(ep_a, ep_b);
  const PathRef rev = topo_->cached_path(ep_b, ep_a);
  assert(fwd->valid && rev->valid && "endpoints not connected");
  install_direction(*fwd, ep_a, ep_b, hb->addr());
  install_direction(*rev, ep_b, ep_a, ha->addr());
}

void Materializer::add_alias_path(net::IpAddr alias, int ep_src, int ep_dst) {
  net::Host* hd = host(ep_dst);
  hd->add_alias(alias);
  const PathRef p = topo_->cached_path(ep_src, ep_dst);
  assert(p->valid);
  install_direction(*p, ep_src, ep_dst, alias);
}

void Materializer::add_backbone_pair(int dc_ep_a, int dc_ep_b) {
  net::Host* ha = host(dc_ep_a);
  net::Host* hb = host(dc_ep_b);
  RouterPath fwd = topo_->backbone_path(dc_ep_a, dc_ep_b);
  RouterPath rev = topo_->backbone_path(dc_ep_b, dc_ep_a);
  install_direction(fwd, dc_ep_a, dc_ep_b, hb->addr());
  install_direction(rev, dc_ep_b, dc_ep_a, ha->addr());
}

void Materializer::apply_events() {
  for (const LinkEvent& ev : topo_->events()) {
    auto it = links_.find(ev.link_id);
    if (it == links_.end()) continue;
    net::Link* l = ev.forward ? it->second.first : it->second.second;
    l->background().add_event(ev.from, ev.until, ev.util_boost);
  }
}

}  // namespace cronets::topo
