#pragma once

#include <unordered_map>
#include <utility>

#include "net/network.h"
#include "topo/internet.h"

namespace cronets::topo {

/// Builds a packet-level net::Network containing exactly the slice of the
/// generated Internet that an experiment exercises: the hosts involved and
/// every router/link on the policy paths between them. Links materialized
/// twice (shared by several paths) are deduplicated so background
/// congestion is consistent across flows, like the real network.
class Materializer {
 public:
  Materializer(Internet* topo, net::Network* network)
      : topo_(topo), net_(network) {}

  /// Host for an endpoint (created on first use, with its access link).
  net::Host* host(int endpoint_id);

  /// Materialize the policy path src -> dst and install routes toward the
  /// dst host's address along it. Also installs the reverse path (routing
  /// may be asymmetric; both directions are policy-computed).
  void add_pair(int ep_a, int ep_b);

  /// Install `alias` as an additional address of `ep_dst`, routed along the
  /// policy path ep_src -> ep_dst (MPTCP ADD_ADDR path steering: the alias
  /// is only reachable along this particular path).
  void add_alias_path(net::IpAddr alias, int ep_src, int ep_dst);

  /// Materialize the private cloud backbone path between two DC endpoints.
  void add_backbone_pair(int dc_ep_a, int dc_ep_b);

  /// The materialized link for a traversal direction (nullptr if absent).
  net::Link* link(int topo_link_id, bool forward) const;

  /// Apply the Internet's scheduled transient events to every materialized
  /// link (call after all paths are added).
  void apply_events();

 private:
  net::Router* router(int router_id);
  /// Returns {fwd, rev} net links for a topo link between materialized
  /// nodes a/b where `a_is_router_a` says whether node `a` is the topo
  /// link's router_a side.
  std::pair<net::Link*, net::Link*> materialize_link(int topo_link_id, net::Node* a,
                                                     net::Node* b, bool a_is_router_a);
  void install_direction(const RouterPath& p, int ep_src, int ep_dst,
                         net::IpAddr dst_addr);

  Internet* topo_;
  net::Network* net_;
  std::unordered_map<int, net::Host*> hosts_;       // endpoint id -> host
  std::unordered_map<int, net::Router*> routers_;   // topo router id -> router
  // topo link id -> {a->b link, b->a link}
  std::unordered_map<int, std::pair<net::Link*, net::Link*>> links_;
};

}  // namespace cronets::topo
