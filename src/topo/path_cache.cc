#include "topo/path_cache.h"

#include <utility>

#include "topo/internet.h"

namespace cronets::topo {

PathRef PathCache::get(int ep_src, int ep_dst) {
  return get_keyed(key(ep_src, ep_dst), ep_src, ep_dst, /*backbone=*/false);
}

PathRef PathCache::get_backbone(int dc_ep_a, int dc_ep_b) {
  return get_keyed(key(dc_ep_a, dc_ep_b) | kBackboneKeyBit, dc_ep_a, dc_ep_b,
                   /*backbone=*/true);
}

PathRef PathCache::get_keyed(std::uint64_t k, int ep_src, int ep_dst,
                             bool backbone) {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = cache_.find(k);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Compute outside the lock: paths are deterministic, so losing the
  // insert race below just discards an identical duplicate.
  auto path = std::make_shared<const RouterPath>(
      backbone ? topo_->backbone_path(ep_src, ep_dst)
               : topo_->path(ep_src, ep_dst));
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.emplace(k, std::move(path)).first->second;
}

void PathCache::invalidate() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  cache_.clear();
}

std::size_t PathCache::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return cache_.size();
}

}  // namespace cronets::topo
