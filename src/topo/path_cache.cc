#include "topo/path_cache.h"

#include <utility>

#include "topo/internet.h"

namespace cronets::topo {

PathRef PathCache::get(int ep_src, int ep_dst) {
  const std::uint64_t k = key(ep_src, ep_dst);
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = cache_.find(k);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Compute outside the lock: paths are deterministic, so losing the
  // insert race below just discards an identical duplicate.
  auto path = std::make_shared<const RouterPath>(topo_->path(ep_src, ep_dst));
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.emplace(k, std::move(path)).first->second;
}

void PathCache::invalidate() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  cache_.clear();
}

std::size_t PathCache::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return cache_.size();
}

}  // namespace cronets::topo
