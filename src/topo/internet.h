#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "topo/path_cache.h"
#include "topo/types.h"

namespace cronets::topo {

/// Knobs of the synthetic Internet. Defaults are calibrated so that the
/// distribution of default-path quality and the overlay-gain shapes match
/// the paper's evaluation (see DESIGN.md and bench/).
struct TopologyParams {
  std::uint64_t seed = 42;

  int num_tier1 = 12;
  int num_tier2 = 42;
  int num_stubs = 170;

  double t1_peer_prob = 0.85;           ///< T1 clique density
  int t2_min_providers = 1;
  int t2_max_providers = 3;
  double t2_same_region_peer_prob = 0.25;
  double t2_cross_region_peer_prob = 0.03;
  int stub_min_providers = 1;
  int stub_max_providers = 2;

  /// Region mix for stub ASes (mirrors PlanetLab's footprint).
  std::vector<std::pair<Region, double>> stub_region_weights = {
      {Region::kEurope, 0.32},     {Region::kNaEast, 0.18},
      {Region::kNaWest, 0.14},     {Region::kAsia, 0.22},
      {Region::kSouthAmerica, 0.07}, {Region::kAustralia, 0.07},
  };

  // Congestion character (per link direction, drawn independently):
  // core links between/into transit ASes run hot much more often than edges
  // (Akella'03 / Kang-Gligor'14, the paper's §I premise).
  double core_hot_fraction = 0.05;
  double core_warm_fraction = 0.24;
  /// A small share of core links is severely congested (failure-grade):
  /// these create the paper's 100-400x improvement tail.
  double core_severe_fraction = 0.025;
  /// Tier-1 interconnects are the best-provisioned commercial links; their
  /// congestion classes are scaled down by this factor.
  double t1_interconnect_scale = 0.45;
  double access_hot_fraction = 0.05;
  double access_warm_fraction = 0.20;
  double severe_util_lo = 0.93, severe_util_hi = 0.97;
  double hot_util_lo = 0.72, hot_util_hi = 0.92;
  double warm_util_lo = 0.50, warm_util_hi = 0.72;
  double cool_util_lo = 0.10, cool_util_hi = 0.50;
  double cloud_util_lo = 0.08, cloud_util_hi = 0.38;
  double diurnal_amp_max = 0.08;

  /// Client (PlanetLab-class) TCP buffer autotuning limits, bytes.
  std::int64_t client_rcv_buf_lo = 128 * 1024, client_rcv_buf_hi = 512 * 1024;

  /// Heterogeneous burst-loss susceptibility of commercial links. Core
  /// links shed bursts much more readily than edges (Akella'03: bottlenecks
  /// concentrate in the core) — this is what the overlay bypasses.
  double mild_prob = 0.9;
  double mild_lo = 0.002, mild_hi = 0.009;
  double mild_knee = 0.30;
  double access_mild_prob = 0.15;
  double access_mild_lo = 0.0005, access_mild_hi = 0.002;

  /// Residual (non-congestion) loss floor per link direction.
  double base_loss_lo = 5e-7, base_loss_hi = 5e-6;
  double cloud_base_loss_lo = 1e-7, cloud_base_loss_hi = 1e-6;

  /// Fiber detour: commercial inter-AS links rarely follow great circles
  /// (median RTT inflation on real paths is ~1.5-2.5x), while cloud
  /// providers buy near-shortest premium transit. This asymmetry is what
  /// lets a cloud bounce *reduce* RTT for half the paths (Fig. 5).
  double detour_mu = 0.35;     ///< lognormal mu for commercial links
  double detour_sigma = 0.40;  ///< lognormal sigma
  double detour_max = 4.0;
  double cloud_detour_lo = 1.05, cloud_detour_hi = 1.45;
};

/// The cloud provider: data centers, their peering richness, and the
/// private backbone (Softlayer-style; §I's "four key trends").
struct CloudParams {
  struct Dc {
    std::string name;
    GeoPoint pos;
  };
  /// Default: the five Softlayer locations used in the paper's §II-A, plus
  /// two more for the 7-overlay MPTCP experiment (§VI-B).
  std::vector<Dc> dcs = {
      {"wdc", {38.9, -77.0}},  {"sjc", {37.3, -121.9}}, {"dal", {32.8, -96.8}},
      {"ams", {52.4, 4.9}},    {"tok", {35.7, 139.7}},  {"lon", {51.5, -0.1}},
      {"sng", {1.35, 103.8}},
  };
  int transit_t1s = 3;  ///< nearest tier-1 transit providers per DC
  int peer_t2s = 5;     ///< nearest tier-2 peers per DC
  double backbone_capacity_bps = 40e9;
  /// Fiber-detour factor range of the backbone mesh links. The default
  /// [1, 1] keeps the mesh on great circles (and draws nothing from the
  /// topology RNG, so existing worlds are bit-identical). A pathological
  /// range (e.g. [1, 3]) makes the mesh violate the triangle inequality,
  /// which is what gives a k>=2-hop overlay route room to beat the direct
  /// DC-to-DC edge on delay.
  double backbone_detour_lo = 1.0;
  double backbone_detour_hi = 1.0;
  double vm_nic_bps = 100e6;  ///< the Softlayer 100 Mbps virtual NIC
};

/// BGP-style policy routing over the AS graph (Gao-Rexford: prefer
/// customer > peer > provider routes, then shortest AS path, deterministic
/// tie-break). Tables are computed per destination AS and cached.
///
/// `to` and `as_path` are safe to call concurrently (the cache is guarded
/// by a reader/writer lock; a miss computes outside the lock and the first
/// insert wins, so all threads see one table). `invalidate` must not race
/// with queries — topology mutations happen in the single-threaded setup
/// phase between measurement sweeps.
class Routing {
 public:
  struct Entry {
    int next = -1;   ///< next-hop AS (-1: unreachable; self for dst)
    int len = 1 << 20;
    int cls = 0;     ///< 3=customer route, 2=peer, 1=provider, 4=self
  };

  explicit Routing(const std::vector<AsNode>* ases) : ases_(ases) {}

  const std::vector<Entry>& to(int dst_as);
  /// AS-level path [src, ..., dst]; empty if unreachable.
  std::vector<int> as_path(int src_as, int dst_as);
  void invalidate() {
    std::unique_lock<std::shared_mutex> lk(mu_);
    cache_.clear();
  }

 private:
  std::vector<Entry> compute(int dst_as) const;
  const std::vector<AsNode>* ases_;
  std::shared_mutex mu_;
  std::unordered_map<int, std::vector<Entry>> cache_;  // node-based: value
                                                       // refs stay valid
                                                       // across inserts
};

/// A transient AS/link-level congestion or failure episode (for the
/// longitudinal study, §IV).
struct LinkEvent {
  int link_id = -1;
  bool forward = true;  ///< direction (router_a -> router_b)
  sim::Time from{};
  sim::Time until{};
  double util_boost = 0.0;
  /// Extra loss probability folded into the direction's survival factor
  /// (gray failure: the link stays up and routed, but drops packets).
  /// Composes independently of utilization: 1-l := (1-l) * (1-loss_boost).
  double loss_boost = 0.0;
};

/// One post-construction topology mutation, as delivered to registered
/// mutation observers. Two kinds exist today: transient link-level
/// congestion episodes (`add_event`) and BGP adjacency failures/restores
/// (`set_adjacency_up`). Observers receive the details synchronously, after
/// the mutation has been applied and `mutation_epoch` bumped, so they can
/// invalidate derived state eagerly instead of polling the epoch.
struct Mutation {
  enum class Kind {
    kTransientEvent,   ///< add_event: utilization boost on one link direction
    kAdjacencyChange,  ///< set_adjacency_up: routes may differ now
  };
  Kind kind = Kind::kTransientEvent;
  std::uint64_t epoch = 0;  ///< mutation_epoch() after this mutation

  LinkEvent event{};        ///< kTransientEvent only
  int as_a = -1;            ///< kAdjacencyChange only
  int as_b = -1;
  bool up = true;
};

/// The generated Internet: AS graph, router-level expansion, cloud
/// provider, endpoints, and policy-path queries. This object is the "map";
/// the analytic flow model and the packet-level materializer both consume
/// it so that every experiment sees the same world.
class Internet {
 public:
  Internet(const TopologyParams& params, const CloudParams& cloud);

  // --- endpoints -----------------------------------------------------
  /// Attach a host to a stub AS in `region` (round-robins over stubs).
  int add_client(Region region, const std::string& name);
  /// Attach a well-connected server host in `region`.
  int add_server(Region region, const std::string& name);
  /// Generic attachment with explicit access properties.
  int add_endpoint(int as_id, const std::string& name, double access_bps,
                   net::BackgroundParams bg);

  /// One pre-created VM endpoint per cloud data center.
  const std::vector<int>& dc_endpoints() const { return dc_endpoints_; }
  int dc_endpoint(const std::string& dc_name) const;

  // --- queries --------------------------------------------------------
  const std::vector<AsNode>& ases() const { return ases_; }
  const std::vector<TopoLink>& links() const { return links_; }
  const std::vector<RouterInfo>& routers() const { return routers_; }
  const Endpoint& endpoint(int id) const { return endpoints_[id]; }
  std::size_t endpoint_count() const { return endpoints_.size(); }
  Routing& routing() { return routing_; }

  /// Policy-routed router-level path between two endpoints.
  RouterPath path(int ep_src, int ep_dst);
  /// Interned immutable version of `path()` (computed once per pair,
  /// thread-safe). Measurement hot paths use this; the returned object is
  /// shared, never recomputed until the topology mutates.
  PathRef cached_path(int ep_src, int ep_dst) {
    return path_cache_.get(ep_src, ep_dst);
  }
  PathCache& path_cache() { return path_cache_; }
  /// Base (uncongested) round-trip time of a path in ms.
  double base_rtt_ms(const RouterPath& p) const;
  /// Direct cloud-backbone path between two DC endpoints (multi-hop
  /// overlay extension); falls back to the public path if either endpoint
  /// is not a DC VM.
  RouterPath backbone_path(int dc_ep_a, int dc_ep_b);
  /// Interned immutable version of `backbone_path()` (separate key space
  /// in the shared PathCache, same invalidation). The multi-hop routing
  /// plane's edge measurements go through this, so the SoA batch sampler
  /// sees stable interned segments with zero new allocation paths.
  PathRef cached_backbone_path(int dc_ep_a, int dc_ep_b) {
    return path_cache_.get_backbone(dc_ep_a, dc_ep_b);
  }

  // --- dynamics -------------------------------------------------------
  void add_event(const LinkEvent& ev);
  const std::vector<LinkEvent>& events() const { return events_; }

  /// Mutation observers: registered callbacks fire synchronously on every
  /// post-construction mutation (`add_event`, `set_adjacency_up`), after
  /// the mutation has been applied. This replaces polling `mutation_epoch`
  /// for consumers that must react promptly (control planes, caches).
  /// Listeners run in registration order; the PathCache registers first so
  /// later listeners always see post-invalidation route queries. Like the
  /// mutations themselves, registration is single-threaded.
  using MutationListener = std::function<void(const Mutation&)>;
  int add_mutation_listener(MutationListener listener);
  void remove_mutation_listener(int id);

  /// Monotonic counter bumped by every post-construction mutation that can
  /// change path-derived quantities (transient events, BGP failures).
  /// Consumers caching per-path state compare epochs to invalidate lazily.
  /// Mutations happen in the single-threaded setup phase between sweeps.
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// AS-level failure injection: take the BGP session between two
  /// adjacent ASes down (or back up). Invalidates the routing cache —
  /// subsequent path queries see the converged post-failure routes.
  /// Returns false if the ASes are not adjacent.
  bool set_adjacency_up(int as_a, int as_b, bool up);

  /// Is the BGP adjacency between two ASes currently up? False when the
  /// ASes are not adjacent at all.
  bool adjacency_up(int as_a, int as_b) const;

  sim::Rng& rng() { return rng_; }
  const TopologyParams& params() const { return params_; }
  const CloudParams& cloud() const { return cloud_; }

 private:
  void generate(const TopologyParams& p);
  void build_cloud(const CloudParams& c);
  int new_as(Tier tier, Region region, GeoPoint pos, const std::string& name,
             int num_routers);
  int new_link(int router_a, int router_b, double capacity_bps, double delay_ms,
               bool is_core, bool cloud_grade, bool backbone = false,
               bool t1_interconnect = false);
  void relate(int as_a, int as_b, Rel rel_a_to_b, double capacity_bps,
              bool cloud_grade);
  net::BackgroundParams draw_condition(bool is_core, bool cloud_grade,
                                       double lon_for_phase,
                                       bool t1_interconnect = false);
  /// Append the intra-AS chain from router index `from_idx` to `to_idx` of
  /// AS `as_id` onto `path` (routers and links).
  void append_internal(int as_id, int from_idx, int to_idx, RouterPath* path) const;
  int router_index(int as_id, int router_id) const;

  TopologyParams params_;
  CloudParams cloud_;
  sim::Rng rng_;
  std::vector<AsNode> ases_;
  std::vector<TopoLink> links_;
  std::vector<RouterInfo> routers_;
  std::vector<Endpoint> endpoints_;
  std::vector<int> tier1_;
  std::vector<int> tier2_;
  std::vector<int> stubs_;
  std::vector<int> cloud_as_;        // one AS per DC
  std::vector<int> dc_endpoints_;    // one VM endpoint per DC
  std::vector<int> backbone_links_;  // DC mesh link ids (i*n+j indexing)
  std::unordered_map<Region, std::vector<int>> stubs_by_region_;
  std::unordered_map<Region, int> next_stub_in_region_;
  void notify_mutation(const Mutation& m);

  std::vector<LinkEvent> events_;
  std::uint64_t mutation_epoch_ = 0;
  std::vector<std::pair<int, MutationListener>> mutation_listeners_;
  int next_listener_id_ = 0;
  Routing routing_{&ases_};
  PathCache path_cache_{this};
};

}  // namespace cronets::topo
