#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/background.h"

namespace cronets::topo {

/// Coarse geographic regions used to place ASes and endpoints. The mix
/// mirrors the paper's PlanetLab deployment (§II-A).
enum class Region {
  kNaEast,
  kNaWest,
  kEurope,
  kAsia,
  kSouthAmerica,
  kAustralia,
};

inline const char* region_name(Region r) {
  switch (r) {
    case Region::kNaEast: return "na-east";
    case Region::kNaWest: return "na-west";
    case Region::kEurope: return "europe";
    case Region::kAsia: return "asia";
    case Region::kSouthAmerica: return "south-america";
    case Region::kAustralia: return "australia";
  }
  return "?";
}

struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in km.
double distance_km(GeoPoint a, GeoPoint b);
/// One-way propagation delay for a link spanning `km` (fiber ~200 km/ms,
/// plus a per-hop equipment constant).
double propagation_ms(double km);
GeoPoint region_center(Region r);

enum class Tier : std::uint8_t {
  kTier1,    ///< global transit backbone
  kTier2,    ///< regional transit
  kStub,     ///< edge/access AS (clients, servers attach here)
  kCloudDc,  ///< one cloud data-center AS (well peered)
};

/// Business relationship from the perspective of the first AS.
enum class Rel : std::uint8_t {
  kProviderOf,  ///< a sells transit to b
  kCustomerOf,  ///< a buys transit from b
  kPeerWith,    ///< settlement-free peering
};

inline Rel reverse(Rel r) {
  switch (r) {
    case Rel::kProviderOf: return Rel::kCustomerOf;
    case Rel::kCustomerOf: return Rel::kProviderOf;
    case Rel::kPeerWith: return Rel::kPeerWith;
  }
  return Rel::kPeerWith;
}

/// One physical link in the topology. Bidirectional, with per-direction
/// background-congestion parameters (bg_fwd applies a->b).
struct TopoLink {
  int id = -1;
  int router_a = -1;
  int router_b = -1;
  double capacity_bps = 10e9;
  double delay_ms = 1.0;
  net::BackgroundParams bg_fwd{};
  net::BackgroundParams bg_rev{};
  bool is_core = false;        ///< inter-AS link between/into tier-1/2
  bool is_backbone = false;    ///< cloud private backbone
};

struct RouterInfo {
  int id = -1;
  int as_id = -1;
  std::string name;
};

struct AsAdjacency {
  int nbr_as = -1;
  Rel rel = Rel::kPeerWith;  ///< relationship of *this* AS toward nbr
  int link_id = -1;
  int my_router = -1;
  int nbr_router = -1;
  bool up = true;            ///< BGP session state (failure injection)
};

struct AsNode {
  int id = -1;
  Tier tier = Tier::kStub;
  Region region = Region::kEurope;
  GeoPoint pos{};
  std::string name;
  std::vector<int> routers;      ///< [0]=hub/core, rest are border PoPs
  std::vector<int> agg_routers;  ///< transit only: aggregation per border
  /// Edge AS: intra_links[i-1] = hub<->routers[i].
  /// Transit AS: intra_links[2(i-1)] = hub<->agg_i, [2(i-1)+1] = agg_i<->routers[i].
  std::vector<int> intra_links;
  std::vector<AsAdjacency> adj;
};

/// A host attachment point (client, server, or cloud VM).
struct Endpoint {
  int id = -1;
  int as_id = -1;
  int access_link = -1;  ///< host <-> AS border router link
  int access_router = -1;
  std::string name;
  Region region = Region::kEurope;
  /// TCP receive buffer of this host. PlanetLab-era clients were
  /// memory-starved (small kernel autotuning limits), which caps their
  /// window-bound throughput; cloud VMs and servers are tuned.
  std::int64_t rcv_buf = 4 * 1024 * 1024;
};

/// One directed traversal of a physical link. `forward` means the packet
/// flows router_a -> router_b (selects which direction's background
/// parameters apply).
struct Traversal {
  int link_id = -1;
  bool forward = true;
};

/// Router-level path between two endpoints (including access links).
struct RouterPath {
  std::vector<int> routers;          ///< routers visited, in order
  std::vector<Traversal> traversals; ///< access + transit + access links
  std::vector<int> as_seq;           ///< AS-level path
  bool valid = false;
};

/// Shared immutable path as returned by the interning PathCache. Pointer
/// identity is stable for the lifetime of the cache entry, so consumers may
/// key their own per-path memos on the RouterPath address.
using PathRef = std::shared_ptr<const RouterPath>;

}  // namespace cronets::topo
