#include "topo/internet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cronets::topo {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// All regions, used for round-robin placement.
constexpr Region kAllRegions[] = {Region::kNaEast,       Region::kNaWest,
                                  Region::kEurope,       Region::kAsia,
                                  Region::kSouthAmerica, Region::kAustralia};
}  // namespace

Internet::Internet(const TopologyParams& params, const CloudParams& cloud)
    : params_(params), cloud_(cloud), rng_(params.seed) {
  generate(params);
  build_cloud(cloud);
  // The interned-path cache invalidates itself through the observer
  // mechanism like any other consumer of route-changing mutations. It is
  // registered first, so every later listener's path queries already see
  // the post-mutation routes.
  add_mutation_listener([this](const Mutation& m) {
    if (m.kind == Mutation::Kind::kAdjacencyChange) path_cache_.invalidate();
  });
}

void Internet::add_event(const LinkEvent& ev) {
  events_.push_back(ev);
  ++mutation_epoch_;  // derived per-path caches must recompute event lists
  Mutation m;
  m.kind = Mutation::Kind::kTransientEvent;
  m.epoch = mutation_epoch_;
  m.event = ev;
  notify_mutation(m);
}

int Internet::add_mutation_listener(MutationListener listener) {
  const int id = next_listener_id_++;
  mutation_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Internet::remove_mutation_listener(int id) {
  for (auto it = mutation_listeners_.begin(); it != mutation_listeners_.end();
       ++it) {
    if (it->first == id) {
      mutation_listeners_.erase(it);
      return;
    }
  }
}

void Internet::notify_mutation(const Mutation& m) {
  for (const auto& [id, listener] : mutation_listeners_) {
    (void)id;
    listener(m);
  }
}

int Internet::new_as(Tier tier, Region region, GeoPoint pos, const std::string& name,
                     int num_routers) {
  AsNode as;
  as.id = static_cast<int>(ases_.size());
  as.tier = tier;
  as.region = region;
  as.pos = pos;
  as.name = name;
  for (int i = 0; i < num_routers; ++i) {
    RouterInfo r;
    r.id = static_cast<int>(routers_.size());
    r.as_id = as.id;
    r.name = name + "-r" + std::to_string(i);
    routers_.push_back(r);
    as.routers.push_back(r.id);
  }
  // Transit ASes get an aggregation router per border PoP (real crossings
  // are several IP hops); edge ASes use a plain star.
  const bool transit = tier == Tier::kTier1 || tier == Tier::kTier2;
  if (transit) {
    for (int i = 1; i < num_routers; ++i) {
      RouterInfo r;
      r.id = static_cast<int>(routers_.size());
      r.as_id = as.id;
      r.name = name + "-agg" + std::to_string(i);
      routers_.push_back(r);
      as.agg_routers.push_back(r.id);
    }
  }
  ases_.push_back(as);
  // Intra-AS star: routers[0] is the hub (core), the rest are border PoPs.
  // Any two crossings of the AS share only same-direction sub-legs, which
  // keeps overlay paths largely router-disjoint inside the core.
  auto& stored = ases_.back();
  for (int i = 1; i < num_routers; ++i) {
    const double delay =
        tier == Tier::kTier1 ? rng_.uniform(1.0, 6.0) : rng_.uniform(0.2, 1.5);
    if (transit) {
      // hub <-> agg_i <-> border_i
      const int agg = stored.agg_routers[static_cast<std::size_t>(i) - 1];
      stored.intra_links.push_back(new_link(stored.routers[0], agg, 40e9, delay / 2,
                                            /*is_core=*/false, /*cloud_grade=*/true));
      stored.intra_links.push_back(new_link(agg, stored.routers[i], 40e9, delay / 2,
                                            /*is_core=*/false, /*cloud_grade=*/true));
    } else {
      stored.intra_links.push_back(new_link(stored.routers[0], stored.routers[i],
                                            40e9, delay, /*is_core=*/false,
                                            /*cloud_grade=*/true));
    }
  }
  return stored.id;
}

net::BackgroundParams Internet::draw_condition(bool is_core, bool cloud_grade,
                                               double lon_for_phase,
                                               bool t1_interconnect) {
  net::BackgroundParams bg;
  const auto& p = params_;
  const double t1s = t1_interconnect ? p.t1_interconnect_scale : 1.0;
  double u;
  if (cloud_grade) {
    u = rng_.uniform(p.cloud_util_lo, p.cloud_util_hi);
    bg.sigma = 0.015;
    bg.mild_scale = 0.0002;  // premium ports: negligible burst loss
  } else {
    const double severe = (is_core ? p.core_severe_fraction : 0.0) * t1s;
    const double hot = (is_core ? p.core_hot_fraction : p.access_hot_fraction) * t1s;
    const double warm = is_core ? p.core_warm_fraction : p.access_warm_fraction;
    const double roll = rng_.uniform();
    if (roll < severe) {
      u = rng_.uniform(p.severe_util_lo, p.severe_util_hi);
      bg.sigma = 0.03;
    } else if (roll < severe + hot) {
      u = rng_.uniform(p.hot_util_lo, p.hot_util_hi);
      bg.sigma = 0.05;
    } else if (roll < severe + hot + warm) {
      u = rng_.uniform(p.warm_util_lo, p.warm_util_hi);
      bg.sigma = 0.04;
    } else {
      u = rng_.uniform(p.cool_util_lo, p.cool_util_hi);
      bg.sigma = 0.025;
    }
    bg.diurnal_amp = rng_.uniform(0.0, p.diurnal_amp_max);
    bg.diurnal_phase = lon_for_phase * kPi / 180.0;
    // Burst-loss susceptibility is heterogeneous and concentrated in the
    // core (Akella'03): edge links are mostly clean, core links shed
    // packets under moderate load — exactly the loss the overlay bypasses.
    if (is_core) {
      bg.mild_scale =
          rng_.bernoulli(p.mild_prob) ? rng_.uniform(p.mild_lo, p.mild_hi) * t1s : 0.0;
    } else {
      bg.mild_scale = rng_.bernoulli(p.access_mild_prob)
                          ? rng_.uniform(p.access_mild_lo, p.access_mild_hi)
                          : 0.0;
    }
    bg.mild_knee = p.mild_knee;
  }
  bg.mean_util = u;
  // Commercial links carry a small residual loss floor; cloud peering,
  // transit and backbone links are near-pristine (premium, over-provisioned
  // ports) — this is what makes the best overlay path almost loss-free
  // while the default path keeps a measurable retransmission rate (Fig. 4).
  bg.base_loss = cloud_grade
                     ? rng_.uniform(p.cloud_base_loss_lo, p.cloud_base_loss_hi)
                     : rng_.uniform(p.base_loss_lo, p.base_loss_hi);
  return bg;
}

int Internet::new_link(int router_a, int router_b, double capacity_bps,
                       double delay_ms, bool is_core, bool cloud_grade,
                       bool backbone, bool t1_interconnect) {
  TopoLink l;
  l.id = static_cast<int>(links_.size());
  l.router_a = router_a;
  l.router_b = router_b;
  l.capacity_bps = capacity_bps;
  l.delay_ms = delay_ms;
  l.is_core = is_core;
  l.is_backbone = backbone;
  const double lon =
      router_a >= 0 ? ases_[routers_[router_a].as_id].pos.lon : 0.0;
  l.bg_fwd = draw_condition(is_core, cloud_grade || backbone, lon, t1_interconnect);
  l.bg_rev = draw_condition(is_core, cloud_grade || backbone, lon, t1_interconnect);
  links_.push_back(l);
  return l.id;
}

void Internet::relate(int as_a, int as_b, Rel rel_a_to_b, double capacity_bps,
                      bool cloud_grade) {
  AsNode& a = ases_[as_a];
  AsNode& b = ases_[as_b];
  // Spread attachments round-robin over each AS's border PoPs (not the hub).
  auto border = [](const AsNode& n) -> int {
    if (n.routers.size() == 1) return n.routers[0];
    return n.routers[1 + n.adj.size() % (n.routers.size() - 1)];
  };
  const int ra = border(a);
  const int rb = border(b);
  const double detour =
      cloud_grade
          ? rng_.uniform(params_.cloud_detour_lo, params_.cloud_detour_hi)
          : std::min(params_.detour_max,
                     std::max(1.0, rng_.lognormal(params_.detour_mu,
                                                  params_.detour_sigma)));
  const double delay = propagation_ms(distance_km(a.pos, b.pos)) * detour;
  const bool core = (a.tier != Tier::kStub && b.tier != Tier::kStub) &&
                    !(a.tier == Tier::kCloudDc || b.tier == Tier::kCloudDc);
  const bool t1t1 = a.tier == Tier::kTier1 && b.tier == Tier::kTier1;
  const int lid =
      new_link(ra, rb, capacity_bps, delay, core, cloud_grade, false, t1t1);
  a.adj.push_back(AsAdjacency{as_b, rel_a_to_b, lid, ra, rb});
  b.adj.push_back(AsAdjacency{as_a, reverse(rel_a_to_b), lid, rb, ra});
}

void Internet::generate(const TopologyParams& p) {
  // ---- Tier 1 backbone: spread across regions, dense peering mesh. ----
  for (int i = 0; i < p.num_tier1; ++i) {
    const Region r = kAllRegions[i % 6 < 4 ? i % 4 : i % 6];  // bias to NA/EU/Asia
    GeoPoint pos = region_center(r);
    pos.lat += rng_.uniform(-6.0, 6.0);
    pos.lon += rng_.uniform(-10.0, 10.0);
    tier1_.push_back(new_as(Tier::kTier1, r, pos, "t1-" + std::to_string(i), 6));
  }
  for (std::size_t i = 0; i < tier1_.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_.size(); ++j) {
      if (rng_.bernoulli(p.t1_peer_prob)) {
        relate(tier1_[i], tier1_[j], Rel::kPeerWith, 40e9, false);
      }
    }
  }

  // ---- Tier 2 regionals: customers of nearest T1s, some peering. ----
  for (int i = 0; i < p.num_tier2; ++i) {
    const Region r = kAllRegions[i % 6 < 4 ? i % 4 : i % 6];
    GeoPoint pos = region_center(r);
    pos.lat += rng_.uniform(-7.0, 7.0);
    pos.lon += rng_.uniform(-12.0, 12.0);
    const int id = new_as(Tier::kTier2, r, pos, "t2-" + std::to_string(i), 5);
    tier2_.push_back(id);

    // Providers: k nearest T1s (with a jittered metric for variety).
    std::vector<std::pair<double, int>> cand;
    for (int t1 : tier1_) {
      cand.push_back({distance_km(pos, ases_[t1].pos) * rng_.uniform(0.8, 1.6), t1});
    }
    std::sort(cand.begin(), cand.end());
    const int k = static_cast<int>(
        rng_.uniform_int(p.t2_min_providers, p.t2_max_providers));
    for (int j = 0; j < k && j < static_cast<int>(cand.size()); ++j) {
      relate(id, cand[j].second, Rel::kCustomerOf, 10e9, false);
    }
  }
  for (std::size_t i = 0; i < tier2_.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2_.size(); ++j) {
      const AsNode& a = ases_[tier2_[i]];
      const AsNode& b = ases_[tier2_[j]];
      const double prob = a.region == b.region ? p.t2_same_region_peer_prob
                                               : p.t2_cross_region_peer_prob;
      if (rng_.bernoulli(prob)) {
        relate(tier2_[i], tier2_[j], Rel::kPeerWith, 10e9, false);
      }
    }
  }

  // ---- Stub / edge ASes: weighted region mix, 1-2 nearby T2 providers. ----
  std::vector<double> weights;
  std::vector<Region> wregion;
  for (auto [reg, w] : p.stub_region_weights) {
    wregion.push_back(reg);
    weights.push_back(w);
  }
  for (int i = 0; i < p.num_stubs; ++i) {
    const Region r = wregion[rng_.weighted_index(weights)];
    GeoPoint pos = region_center(r);
    pos.lat += rng_.uniform(-8.0, 8.0);
    pos.lon += rng_.uniform(-14.0, 14.0);
    const int id = new_as(Tier::kStub, r, pos, "stub-" + std::to_string(i), 3);
    stubs_.push_back(id);
    stubs_by_region_[r].push_back(id);

    std::vector<std::pair<double, int>> cand;
    for (int t2 : tier2_) {
      cand.push_back({distance_km(pos, ases_[t2].pos) * rng_.uniform(0.7, 2.0), t2});
    }
    std::sort(cand.begin(), cand.end());
    const int k = static_cast<int>(
        rng_.uniform_int(p.stub_min_providers, p.stub_max_providers));
    for (int j = 0; j < k && j < static_cast<int>(cand.size()); ++j) {
      relate(id, cand[j].second, Rel::kCustomerOf, 2.5e9, false);
    }
  }
}

void Internet::build_cloud(const CloudParams& c) {
  for (std::size_t i = 0; i < c.dcs.size(); ++i) {
    const auto& dc = c.dcs[i];
    // Pick the region whose centre is closest to the DC.
    Region best = Region::kNaEast;
    double best_d = 1e18;
    for (Region r : kAllRegions) {
      const double d = distance_km(dc.pos, region_center(r));
      if (d < best_d) {
        best_d = d;
        best = r;
      }
    }
    const int id = new_as(Tier::kCloudDc, best, dc.pos, "dc-" + dc.name, 2);
    cloud_as_.push_back(id);

    // Transit from the nearest T1s; rich settlement-free peering with the
    // nearest T2s (the "aggressively peered at IXPs" trend).
    std::vector<std::pair<double, int>> t1cand, t2cand;
    for (int t1 : tier1_) t1cand.push_back({distance_km(dc.pos, ases_[t1].pos), t1});
    for (int t2 : tier2_) t2cand.push_back({distance_km(dc.pos, ases_[t2].pos), t2});
    std::sort(t1cand.begin(), t1cand.end());
    std::sort(t2cand.begin(), t2cand.end());
    for (int j = 0; j < c.transit_t1s && j < static_cast<int>(t1cand.size()); ++j) {
      relate(id, t1cand[j].second, Rel::kCustomerOf, 10e9, /*cloud_grade=*/true);
    }
    for (int j = 0; j < c.peer_t2s && j < static_cast<int>(t2cand.size()); ++j) {
      relate(id, t2cand[j].second, Rel::kPeerWith, 10e9, /*cloud_grade=*/true);
    }
  }

  // Private backbone: full mesh between the DCs' second routers.
  const int n = static_cast<int>(cloud_as_.size());
  backbone_links_.assign(static_cast<std::size_t>(n) * n, -1);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const AsNode& a = ases_[cloud_as_[i]];
      const AsNode& b = ases_[cloud_as_[j]];
      // Only a non-default detour range consumes RNG: the default mesh
      // must reproduce pre-existing worlds bit for bit.
      const double detour =
          c.backbone_detour_hi > c.backbone_detour_lo ||
                  c.backbone_detour_lo != 1.0
              ? rng_.uniform(c.backbone_detour_lo, c.backbone_detour_hi)
              : 1.0;
      const double delay = propagation_ms(distance_km(a.pos, b.pos)) * detour;
      const int lid = new_link(a.routers.back(), b.routers.back(),
                               c.backbone_capacity_bps, delay, /*is_core=*/false,
                               /*cloud_grade=*/true, /*backbone=*/true);
      backbone_links_[i * n + j] = lid;
      backbone_links_[j * n + i] = lid;
    }
  }

  // One VM endpoint per DC, behind the 100 Mbps virtual NIC.
  for (std::size_t i = 0; i < cloud_as_.size(); ++i) {
    net::BackgroundParams bg;
    bg.mean_util = rng_.uniform(0.02, 0.10);
    bg.sigma = 0.01;
    bg.base_loss = 1e-6;
    dc_endpoints_.push_back(
        add_endpoint(cloud_as_[i], "vm-" + c.dcs[i].name, c.vm_nic_bps, bg));
  }
}

int Internet::add_endpoint(int as_id, const std::string& name, double access_bps,
                           net::BackgroundParams bg) {
  Endpoint e;
  e.id = static_cast<int>(endpoints_.size());
  e.as_id = as_id;
  e.name = name;
  e.region = ases_[as_id].region;
  e.access_router = ases_[as_id].routers.front();
  const int lid = new_link(e.access_router, /*router_b=*/-1, access_bps,
                           rng_.uniform(0.2, 2.0), /*is_core=*/false,
                           /*cloud_grade=*/true);
  // Access-link condition is endpoint-specific, not drawn from core pools.
  links_[lid].bg_fwd = bg;
  links_[lid].bg_rev = bg;
  e.access_link = lid;
  endpoints_.push_back(e);
  return e.id;
}

int Internet::add_client(Region region, const std::string& name) {
  auto& pool = stubs_by_region_[region];
  assert(!pool.empty() && "no stub AS in requested region");
  const int as_id = pool[next_stub_in_region_[region]++ % pool.size()];
  net::BackgroundParams bg;
  // Client last mile: usually fine, occasionally busy (MPTCP's last-mile
  // premise holds for a minority of paths). A busy last mile caps the
  // *residual capacity* seen by every path to this client — direct and
  // overlay alike — so those pairs are structurally unimprovable (the
  // ratio~1 mass in Fig. 3 and the polarity in Fig. 10).
  const bool busy = rng_.bernoulli(0.3);
  bg.mean_util = busy ? rng_.uniform(0.45, 0.75) : rng_.uniform(0.03, 0.3);
  bg.sigma = 0.04;
  bg.base_loss = rng_.uniform(2e-6, 2e-5);
  bg.mild_knee = 0.35;
  bg.mild_scale = 0.01;  // busy access sheds packets well before saturation
  // Busy last miles are the slow ones (a congested 1G access would not be).
  const double bps = busy ? 100e6 : (rng_.bernoulli(0.5) ? 100e6 : 1e9);
  const int ep = add_endpoint(as_id, name, bps, bg);
  // PlanetLab-class node: small TCP buffers cap the window-bound rate.
  endpoints_[ep].rcv_buf =
      rng_.uniform_int(params_.client_rcv_buf_lo, params_.client_rcv_buf_hi);
  return ep;
}

int Internet::add_server(Region region, const std::string& name) {
  // Real-life mirror servers live in well-connected hosting: attach them
  // directly to a tier-2 transit AS in the region (fallback: any tier-2).
  std::vector<int> candidates;
  for (int t2 : tier2_) {
    if (ases_[t2].region == region) candidates.push_back(t2);
  }
  if (candidates.empty()) candidates = tier2_;
  const int as_id = candidates[rng_.index(candidates.size())];
  net::BackgroundParams bg;
  bg.mean_util = rng_.uniform(0.05, 0.3);
  bg.sigma = 0.02;
  bg.base_loss = rng_.uniform(1e-6, 1e-5);
  return add_endpoint(as_id, name, 1e9, bg);
}

bool Internet::set_adjacency_up(int as_a, int as_b, bool up) {
  bool found = false;
  for (int as : {as_a, as_b}) {
    const int other = as == as_a ? as_b : as_a;
    for (auto& adj : ases_[static_cast<std::size_t>(as)].adj) {
      if (adj.nbr_as == other) {
        adj.up = up;
        found = true;
      }
    }
  }
  if (found) {
    routing_.invalidate();
    ++mutation_epoch_;
    // Interned paths may route differently now; the PathCache drops them
    // through its own mutation listener (registered first in the ctor).
    Mutation m;
    m.kind = Mutation::Kind::kAdjacencyChange;
    m.epoch = mutation_epoch_;
    m.as_a = as_a;
    m.as_b = as_b;
    m.up = up;
    notify_mutation(m);
  }
  return found;
}

bool Internet::adjacency_up(int as_a, int as_b) const {
  for (const auto& adj : ases_[static_cast<std::size_t>(as_a)].adj) {
    if (adj.nbr_as == as_b) return adj.up;
  }
  return false;
}

int Internet::dc_endpoint(const std::string& dc_name) const {
  for (std::size_t i = 0; i < cloud_.dcs.size(); ++i) {
    if (cloud_.dcs[i].name == dc_name) return dc_endpoints_[i];
  }
  return -1;
}

int Internet::router_index(int as_id, int router_id) const {
  const auto& rs = ases_[as_id].routers;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (rs[i] == router_id) return static_cast<int>(i);
  }
  assert(false && "router not in AS");
  return 0;
}

void Internet::append_internal(int as_id, int from_idx, int to_idx,
                               RouterPath* path) const {
  // Star topology: border -> [agg ->] hub -> [agg ->] border. For transit
  // ASes, intra_links holds two entries per border (hub<->agg, agg<->border);
  // for edge ASes, one (hub<->border).
  const AsNode& as = ases_[as_id];
  if (from_idx == to_idx) return;
  const bool transit = !as.agg_routers.empty();
  auto leg = [&](int border_idx, bool outbound) {
    if (transit) {
      const int agg = as.agg_routers[static_cast<std::size_t>(border_idx) - 1];
      const int l_hub_agg = as.intra_links[2 * (border_idx - 1)];
      const int l_agg_border = as.intra_links[2 * (border_idx - 1) + 1];
      if (outbound) {  // hub -> agg -> border
        path->traversals.push_back(Traversal{l_hub_agg, true});
        path->routers.push_back(agg);
        path->traversals.push_back(Traversal{l_agg_border, true});
        path->routers.push_back(as.routers[border_idx]);
      } else {  // border -> agg -> hub
        path->traversals.push_back(Traversal{l_agg_border, false});
        path->routers.push_back(agg);
        path->traversals.push_back(Traversal{l_hub_agg, false});
        path->routers.push_back(as.routers[0]);
      }
    } else {
      const int lid = as.intra_links[static_cast<std::size_t>(border_idx) - 1];
      if (outbound) {
        path->traversals.push_back(Traversal{lid, true});
        path->routers.push_back(as.routers[border_idx]);
      } else {
        path->traversals.push_back(Traversal{lid, false});
        path->routers.push_back(as.routers[0]);
      }
    }
  };
  if (from_idx != 0) leg(from_idx, /*outbound=*/false);
  if (to_idx != 0) leg(to_idx, /*outbound=*/true);
}

RouterPath Internet::path(int ep_src, int ep_dst) {
  const Endpoint& s = endpoints_[ep_src];
  const Endpoint& d = endpoints_[ep_dst];
  RouterPath p;
  p.as_seq = routing_.as_path(s.as_id, d.as_id);
  if (p.as_seq.empty()) return p;

  // Host -> access router (access links store the router as router_a, so
  // host->router is the "reverse" direction).
  p.traversals.push_back(Traversal{s.access_link, false});
  p.routers.push_back(s.access_router);

  int cur_idx = router_index(s.as_id, s.access_router);
  for (std::size_t k = 0; k + 1 < p.as_seq.size(); ++k) {
    const int A = p.as_seq[k];
    const int B = p.as_seq[k + 1];
    const AsAdjacency* adj = nullptr;
    for (const auto& a : ases_[A].adj) {
      if (a.nbr_as == B && a.up) {
        adj = &a;
        break;
      }
    }
    assert(adj && "AS path uses a non-adjacent hop");
    append_internal(A, cur_idx, router_index(A, adj->my_router), &p);
    const TopoLink& l = links_[adj->link_id];
    p.traversals.push_back(Traversal{adj->link_id, l.router_a == adj->my_router});
    p.routers.push_back(adj->nbr_router);
    cur_idx = router_index(B, adj->nbr_router);
  }
  append_internal(d.as_id, cur_idx, router_index(d.as_id, d.access_router), &p);
  p.traversals.push_back(Traversal{d.access_link, true});
  p.valid = true;
  return p;
}

RouterPath Internet::backbone_path(int dc_ep_a, int dc_ep_b) {
  // Locate the DC indices for the two endpoints.
  int ia = -1, ib = -1;
  for (std::size_t i = 0; i < dc_endpoints_.size(); ++i) {
    if (dc_endpoints_[i] == dc_ep_a) ia = static_cast<int>(i);
    if (dc_endpoints_[i] == dc_ep_b) ib = static_cast<int>(i);
  }
  if (ia < 0 || ib < 0 || ia == ib) return path(dc_ep_a, dc_ep_b);

  const Endpoint& s = endpoints_[dc_ep_a];
  const Endpoint& d = endpoints_[dc_ep_b];
  const AsNode& as_a = ases_[cloud_as_[ia]];
  const AsNode& as_b = ases_[cloud_as_[ib]];
  const int n = static_cast<int>(cloud_as_.size());
  const int lid = backbone_links_[ia * n + ib];

  RouterPath p;
  p.as_seq = {as_a.id, as_b.id};
  p.traversals.push_back(Traversal{s.access_link, false});
  p.routers.push_back(s.access_router);
  append_internal(as_a.id, router_index(as_a.id, s.access_router),
                  static_cast<int>(as_a.routers.size()) - 1, &p);
  const TopoLink& l = links_[lid];
  p.traversals.push_back(Traversal{lid, l.router_a == as_a.routers.back()});
  p.routers.push_back(as_b.routers.back());
  append_internal(as_b.id, static_cast<int>(as_b.routers.size()) - 1,
                  router_index(as_b.id, d.access_router), &p);
  p.traversals.push_back(Traversal{d.access_link, true});
  p.valid = true;
  return p;
}

double Internet::base_rtt_ms(const RouterPath& p) const {
  double oneway = 0.0;
  for (const auto& t : p.traversals) oneway += links_[t.link_id].delay_ms;
  return 2.0 * oneway;
}

}  // namespace cronets::topo
