#pragma once

/// Umbrella header: the CRONets library's public API in one include.
///
///   #include "cronets.h"
///
///   cronets::wkld::World world(42);
///   auto& net = world.internet();
///   ...
///
/// Layering (each header can also be included individually):
///   sim/        discrete-event engine
///   net/        packet-level links, routers, hosts
///   topo/       the synthetic Internet + materializer
///   transport/  TCP, MPTCP, split proxies, apps
///   tunnel/     GRE/IPsec + NAT overlay datapath
///   model/      analytic flow model
///   core/       overlay rental, measurement, selection, placement, cost
///   analysis/   statistics, tstat, traceroute, C4.5
///   wkld/       the paper's experiment definitions

#include "analysis/c45.h"
#include "analysis/stats.h"
#include "analysis/traceroute.h"
#include "analysis/tstat.h"
#include "core/cost.h"
#include "core/measure_model.h"
#include "core/measure_packet.h"
#include "core/overlay.h"
#include "core/placement.h"
#include "core/selection.h"
#include "model/flow_model.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "topo/internet.h"
#include "topo/materialize.h"
#include "transport/apps.h"
#include "transport/mptcp.h"
#include "transport/mptcp_proxy.h"
#include "transport/split_proxy.h"
#include "transport/tcp.h"
#include "tunnel/tunnel.h"
#include "wkld/experiments.h"
#include "wkld/world.h"
