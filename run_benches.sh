#!/bin/bash
# Regenerate every paper figure/table + ablations. CRONETS_QUICK=1 shrinks
# the packet-level runs. Exits non-zero if any bench failed (all benches
# still run, so one bad figure doesn't mask the rest of the report).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p bench_results

failed=()
for b in build/bench/bench_*; do
  name=$(basename "$b")
  [ "$name" = bench_micro ] && continue
  echo "== $name =="
  if ! "$b" > "bench_results/${name#bench_}.txt" 2>&1; then
    failed+=("$name")
    echo "FAILED: $name (see bench_results/${name#bench_}.txt)"
  fi
  tail -n 20 "bench_results/${name#bench_}.txt"
done

if ! build/bench/bench_micro --benchmark_min_time=0.2 | tee bench_results/micro.txt; then
  failed+=(bench_micro)
fi

if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED benches: ${failed[*]}" >&2
  exit 1
fi
echo "all benches passed"
