#!/bin/bash
# Regenerate every paper figure/table + ablations. CRONETS_QUICK=1 shrinks
# the packet-level runs (and benches then write smoke_*.json instead of
# their full-run JSON, so a quick pass never clobbers archived full
# results). `--check` additionally runs tools/check_bench_regress.py
# against the committed bench/baselines/ after the benches finish.
# Exits non-zero if any bench failed (all benches still run, so one bad
# figure doesn't mask the rest of the report).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p bench_results

run_check=0
for arg in "$@"; do
  [ "$arg" = "--check" ] && run_check=1
done

# Quick/smoke runs write smoke_<name>.json (see bench::BenchRun).
smoke_prefix=""
[ -n "${CRONETS_QUICK:-}" ] && [ "${CRONETS_QUICK}" != "0" ] && smoke_prefix="smoke_"

# Benches that record machine-readable results via bench::BenchRun and the
# JSON file each must leave behind. A bench that "passes" but writes a
# missing or unparseable JSON is a failure: CI archives these files, and a
# silent skip would read as a green run with no data.
declare -A json_of=(
  [bench_fig2_weblarge]=fig2_weblarge.json
  [bench_fig3_controlled]=fig3_controlled.json
  [bench_fig6_longitudinal]=fig6_longitudinal.json
  [bench_service_scale]=bench_service_scale.json
  [bench_cost_model]=bench_cost_model.json
  [bench_cost_pareto]=bench_cost_pareto.json
  [bench_chaos]=bench_chaos.json
  [bench_micro]=bench_micro.json
  [bench_multihop_routing]=bench_multihop_routing.json
  [bench_ablation_multihop]=bench_ablation_multihop.json
)

failed=()
check_json() {
  local name=$1
  local json_name=${json_of[$name]:-}
  [ -z "$json_name" ] && return 0
  local json="bench_results/$smoke_prefix$json_name"
  if [ ! -f "$json" ]; then
    failed+=("$name")
    echo "FAILED: $name did not write $json" >&2
    return 0
  fi
  if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
    failed+=("$name")
    echo "FAILED: $name wrote unparseable JSON at $json" >&2
    return 0
  fi
}

for b in build/bench/bench_*; do
  name=$(basename "$b")
  [ "$name" = bench_micro ] && continue
  echo "== $name =="
  # Remove any stale JSON so a previous run's file can't mask a silent skip.
  [ -n "${json_of[$name]:-}" ] && rm -f "bench_results/$smoke_prefix${json_of[$name]}"
  if ! "$b" > "bench_results/${name#bench_}.txt" 2>&1; then
    failed+=("$name")
    echo "FAILED: $name (see bench_results/${name#bench_}.txt)"
  else
    check_json "$name"
  fi
  tail -n 20 "bench_results/${name#bench_}.txt"
done

rm -f "bench_results/$smoke_prefix${json_of[bench_micro]}"
if ! build/bench/bench_micro --benchmark_min_time=0.2 | tee bench_results/micro.txt; then
  failed+=(bench_micro)
else
  check_json bench_micro
fi

if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED benches: ${failed[*]}" >&2
  exit 1
fi
echo "all benches passed"

if [ "$run_check" = 1 ]; then
  echo "== bench regression gate (vs bench/baselines/) =="
  python3 tools/check_bench_regress.py \
    --baseline-dir bench/baselines --results-dir bench_results
fi
