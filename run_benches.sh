#!/bin/bash
# Regenerate every paper figure/table + ablations. CRONETS_QUICK=1 shrinks
# the packet-level runs.
set -u
cd "$(dirname "$0")"
mkdir -p bench_results
for b in build/bench/bench_*; do
  name=$(basename "$b")
  [ "$name" = bench_micro ] && continue
  echo "== $name =="
  "$b" | tee "bench_results/${name#bench_}.txt"
done
build/bench/bench_micro --benchmark_min_time=0.2 | tee bench_results/micro.txt
